#include "green/bench_util/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <thread>

#include "green/automl/askl_meta_cache.h"
#include "green/automl/autopt_system.h"
#include "green/automl/caml_system.h"
#include "green/automl/flaml_system.h"
#include "green/automl/gluon_system.h"
#include "green/automl/random_search_system.h"
#include "green/automl/tabpfn_system.h"
#include "green/automl/tpot_system.h"
#include "green/bench_util/record_io.h"
#include "green/common/logging.h"
#include "green/common/stringutil.h"
#include "green/common/thread_pool.h"
#include "green/data/meta_corpus.h"
#include "green/ml/metrics.h"
#include "green/table/split.h"

namespace green {

int JobsFromEnv() {
  const char* jobs = std::getenv("GREEN_JOBS");
  if (jobs == nullptr || jobs[0] == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(jobs, &end, 10);
  if (end == jobs || *end != '\0') return 1;
  if (parsed == 0) return ThreadPool::DefaultThreads();
  // Clamp before narrowing: LONG_MAX would overflow the int cast.
  return static_cast<int>(std::clamp(parsed, 1L, 4096L));
}

std::string FaultsFromEnv() {
  const char* faults = std::getenv("GREEN_FAULTS");
  return faults == nullptr ? std::string() : std::string(faults);
}

std::string JournalFromEnv() {
  const char* journal = std::getenv("GREEN_JOURNAL");
  return journal == nullptr ? std::string() : std::string(journal);
}

bool ResumeFromEnv() {
  const char* resume = std::getenv("GREEN_RESUME");
  return resume != nullptr && resume[0] == '1';
}

int RetriesFromEnv() {
  const int fallback = RetryPolicy().max_attempts;
  const char* retries = std::getenv("GREEN_RETRIES");
  if (retries == nullptr || retries[0] == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(retries, &end, 10);
  if (end == retries || *end != '\0') return fallback;
  return static_cast<int>(std::clamp(parsed, 1L, 100L));
}

double CellTimeoutFromEnv() {
  const char* timeout = std::getenv("GREEN_CELL_TIMEOUT");
  if (timeout == nullptr || timeout[0] == '\0') return 0.0;
  char* end = nullptr;
  const double parsed = std::strtod(timeout, &end);
  if (end == timeout || *end != '\0') return 0.0;
  if (!(parsed > 0.0)) return 0.0;  // Rejects negatives and NaN.
  return parsed;
}

bool ScopesFromEnv() {
  const char* scopes = std::getenv("GREEN_SCOPES");
  return scopes != nullptr && scopes[0] == '1';
}

bool TransformCacheFromEnv() {
  const char* cache = std::getenv("GREEN_TRANSFORM_CACHE");
  return cache == nullptr || cache[0] != '0';
}

double TransformCacheMbFromEnv() {
  const double fallback = ExperimentConfig().transform_cache_mb;
  const char* mb = std::getenv("GREEN_TRANSFORM_CACHE_MB");
  if (mb == nullptr || mb[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(mb, &end);
  if (end == mb || *end != '\0') return fallback;
  if (!(parsed >= 1.0)) return fallback;  // Rejects < 1, NaN.
  return std::min(parsed, 65536.0);
}

ExperimentConfig ExperimentConfig::FromEnv() {
  ExperimentConfig config;
  config.profile = SimulationProfile::FromEnv();
  const char* full = std::getenv("GREEN_FULL");
  if (full != nullptr && full[0] == '1') {
    config.dataset_limit = 0;  // All 39 tasks.
    config.repetitions = 10;
  }
  config.jobs = JobsFromEnv();
  config.faults = FaultsFromEnv();
  config.journal_path = JournalFromEnv();
  config.resume = ResumeFromEnv();
  config.retry.max_attempts = RetriesFromEnv();
  config.cell_timeout_seconds = CellTimeoutFromEnv();
  config.collect_scopes = ScopesFromEnv();
  config.transform_cache = TransformCacheFromEnv();
  config.transform_cache_mb = TransformCacheMbFromEnv();
  const ShardSpec shard = ShardFromEnv();
  config.shard_index = shard.index;
  config.shard_count = shard.count;
  return config;
}

const char* RunOutcomeName(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kOk:
      return "ok";
    case RunOutcome::kFailed:
      return "failed";
    case RunOutcome::kTimeout:
      return "timeout";
    case RunOutcome::kSkipped:
      return "skipped";
  }
  return "failed";
}

Result<RunOutcome> RunOutcomeFromName(const std::string& name) {
  if (name == "ok") return RunOutcome::kOk;
  if (name == "failed") return RunOutcome::kFailed;
  if (name == "timeout") return RunOutcome::kTimeout;
  if (name == "skipped") return RunOutcome::kSkipped;
  return Status::InvalidArgument("unknown outcome: " + name);
}

RunOutcome OutcomeForStatus(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
      return RunOutcome::kOk;
    case Status::Code::kDeadlineExceeded:
      return RunOutcome::kTimeout;
    case Status::Code::kInvalidArgument:
    case Status::Code::kUnimplemented:
    case Status::Code::kFailedPrecondition:
      return RunOutcome::kSkipped;
    default:
      return RunOutcome::kFailed;
  }
}

const std::vector<std::string>& AllSystemNames() {
  static const std::vector<std::string>* kNames =
      new std::vector<std::string>{
          "tabpfn", "caml",         "caml_tuned",   "flaml",
          "autogluon", "autogluon_refit", "autosklearn1",
          "autosklearn2", "tpot",       "random_search", "autopt"};
  return *kNames;
}

ExperimentRunner::ExperimentRunner(const ExperimentConfig& config)
    : config_(config),
      energy_model_(config.machine),
      tuned_store_(TunedConfigStore::PaperDefaults()),
      faults_(FaultInjector::Lenient(config.faults,
                                     HashCombine(config.seed, 0xfa17))),
      transform_cache_(static_cast<size_t>(
          std::max(1.0, config.transform_cache_mb) * 1024.0 * 1024.0)) {
  auto suite = InstantiateAmlbSuite(config_.profile, config_.seed,
                                    config_.dataset_limit);
  GREEN_CHECK(suite.ok());
  suite_ = std::move(suite).value();
}

namespace {

/// Constructs a system purely to query its declared properties
/// (MinBudgetSeconds etc.) — no tuned parameters, no meta-store, and
/// therefore no side effects. Construction of every system is cheap.
Result<std::unique_ptr<AutoMlSystem>> MakeProbeSystem(
    const std::string& system_name) {
  if (system_name == "tabpfn") {
    return std::unique_ptr<AutoMlSystem>(new TabPfnSystem());
  }
  if (system_name == "caml") {
    return std::unique_ptr<AutoMlSystem>(new CamlSystem());
  }
  if (system_name == "caml_tuned") {
    return std::unique_ptr<AutoMlSystem>(
        new CamlSystem(CamlParams(), "caml_tuned"));
  }
  if (system_name == "flaml") {
    return std::unique_ptr<AutoMlSystem>(new FlamlSystem());
  }
  if (system_name == "autogluon" || system_name == "autogluon_refit") {
    return std::unique_ptr<AutoMlSystem>(new GluonSystem());
  }
  if (system_name == "autosklearn1" || system_name == "autosklearn2") {
    AsklParams params;
    params.warm_start = system_name == "autosklearn2";
    return std::unique_ptr<AutoMlSystem>(
        new AsklSystem(params, /*meta_store=*/nullptr));
  }
  if (system_name == "tpot") {
    return std::unique_ptr<AutoMlSystem>(new TpotSystem());
  }
  if (system_name == "random_search") {
    return std::unique_ptr<AutoMlSystem>(new RandomSearchSystem());
  }
  if (system_name == "autopt") {
    return std::unique_ptr<AutoMlSystem>(new AutoPtSystem());
  }
  return Status::NotFound("unknown system: " + system_name);
}

}  // namespace

std::string RunRecordCellKey(const std::string& system,
                             const std::string& dataset, double budget,
                             int repetition, const std::string& variant) {
  std::string key = StrFormat("%s|%s|%.6g|%d", system.c_str(),
                              dataset.c_str(), budget, repetition);
  if (!variant.empty()) {
    key += '|';
    key += variant;
  }
  return key;
}

std::string RunRecordCellKey(const RunRecord& record) {
  return RunRecordCellKey(record.system, record.dataset,
                          record.paper_budget_seconds, record.repetition,
                          record.variant);
}

double ExperimentRunner::MinBudget(const std::string& system_name) const {
  // Single source of truth: the system's own declaration, so harness
  // gating can never drift from AutoMlSystem::MinBudgetSeconds().
  auto probe = MakeProbeSystem(system_name);
  if (!probe.ok()) return 0.0;  // RunOne reports the NotFound per cell.
  return (*probe)->MinBudgetSeconds();
}

Status ExperimentRunner::EnsureMetaStore() {
  // ASKL2's warm start is meta-learned on a repository of pre-searched
  // datasets; the cost is charged to the development stage (the paper:
  // 140 datasets x 24 h of offline search). Resolved once per runner
  // under a mutex — concurrent sweep workers hitting ASKL cells block
  // until the store (and its development-energy charge) is ready. The
  // store itself comes from the process-wide AsklMetaStoreCache: it is a
  // pure function of the build inputs below, so fig/table binaries and
  // tests constructing many runners build it once. A FAILED build is NOT
  // memoized: the next caller rebuilds, so a transient fault recovered
  // by the retry policy does not poison every later ASKL cell.
  std::lock_guard<std::mutex> lock(meta_mutex_);
  if (meta_store_ != nullptr) return Status::Ok();
  // Fault injection stays ahead of the cache lookup: a runner configured
  // to fail the build must fail even when another runner already cached
  // the store.
  GREEN_RETURN_IF_ERROR(faults_.Check("askl.metastore.build"));

  const SimulationProfile& p = config_.profile;
  const std::string key = StrFormat(
      "seed=%llu|machine=%s|cores=%d|"
      "profile=%zu:%zu:%zu:%zu:%d:%.6g:%.6g",
      static_cast<unsigned long long>(config_.seed),
      config_.machine.name.c_str(), config_.cores, p.max_rows, p.min_rows,
      p.max_features, p.min_features, p.max_classes, p.row_scale,
      p.feature_scale);
  GREEN_ASSIGN_OR_RETURN(
      AsklMetaStoreCache::Entry entry,
      AsklMetaStoreCache::Instance().GetOrBuild(
          key, [&]() -> Result<AsklMetaStoreCache::Entry> {
            MetaCorpusOptions corpus_options;
            corpus_options.num_datasets = 16;
            corpus_options.seed = HashCombine(config_.seed, 0x5743);
            GREEN_ASSIGN_OR_RETURN(
                std::vector<Dataset> corpus,
                GenerateMetaCorpus(corpus_options, config_.profile));

            VirtualClock clock;
            ExecutionContext ctx(&clock, &energy_model_, config_.cores);
            EnergyMeter meter(&energy_model_);
            meter.Start(clock.Now());
            ctx.SetMeter(&meter);
            GREEN_ASSIGN_OR_RETURN(
                AsklMetaStore store,
                AsklMetaStore::BuildFromCorpus(
                    corpus, /*evals_per_dataset=*/6,
                    HashCombine(config_.seed, 0x5744), &ctx));
            AsklMetaStoreCache::Entry built;
            built.store =
                std::make_shared<const AsklMetaStore>(std::move(store));
            // Cache the RAW virtual-scale kWh; each runner rescales by
            // its own budget_scale below.
            built.development_kwh = meter.Stop(clock.Now()).kwh();
            return built;
          }));
  development_kwh_.fetch_add(entry.development_kwh / config_.budget_scale);
  meta_store_ = entry.store;
  return Status::Ok();
}

Result<std::unique_ptr<AutoMlSystem>> ExperimentRunner::MakeSystem(
    const std::string& system_name, double paper_budget) {
  if (system_name == "tabpfn") {
    return std::unique_ptr<AutoMlSystem>(new TabPfnSystem());
  }
  if (system_name == "caml") {
    return std::unique_ptr<AutoMlSystem>(new CamlSystem());
  }
  if (system_name == "caml_tuned") {
    GREEN_ASSIGN_OR_RETURN(CamlParams params,
                           tuned_store_.Get(paper_budget));
    return std::unique_ptr<AutoMlSystem>(
        new CamlSystem(params, "caml_tuned"));
  }
  if (system_name == "flaml") {
    return std::unique_ptr<AutoMlSystem>(new FlamlSystem());
  }
  if (system_name == "autogluon") {
    return std::unique_ptr<AutoMlSystem>(new GluonSystem());
  }
  if (system_name == "autogluon_refit") {
    GluonParams params;
    params.refit_for_inference = true;
    return std::unique_ptr<AutoMlSystem>(new GluonSystem(params));
  }
  if (system_name == "autosklearn1" || system_name == "autosklearn2") {
    GREEN_RETURN_IF_ERROR(EnsureMetaStore());
    AsklParams params;
    params.warm_start = system_name == "autosklearn2";
    return std::unique_ptr<AutoMlSystem>(
        new AsklSystem(params, meta_store_.get()));
  }
  if (system_name == "tpot") {
    return std::unique_ptr<AutoMlSystem>(new TpotSystem());
  }
  if (system_name == "random_search") {
    return std::unique_ptr<AutoMlSystem>(new RandomSearchSystem());
  }
  if (system_name == "autopt") {
    return std::unique_ptr<AutoMlSystem>(new AutoPtSystem());
  }
  return Status::NotFound("unknown system: " + system_name);
}

Result<RunRecord> ExperimentRunner::RunOne(const std::string& system_name,
                                           const Dataset& dataset,
                                           double paper_budget,
                                           int repetition, int cores,
                                           const CancelToken* cancel,
                                           int attempt,
                                           const SweepVariant* variant) {
  const std::string variant_name =
      variant != nullptr ? variant->name : std::string();
  // Probabilistic fault draws inside this attempt are keyed by the cell
  // AND the attempt, so a retry re-rolls the dice instead of
  // deterministically re-hitting the same injected failure. (Cell key
  // first, then attempt — for variant-less cells this is the same
  // "system|dataset|budget|rep|attempt" string as before the variant
  // axis existed.)
  FaultScope fault_scope(
      RunRecordCellKey(system_name, dataset.name(), paper_budget,
                       repetition, variant_name) +
      StrFormat("|%d", attempt));

  GREEN_ASSIGN_OR_RETURN(std::unique_ptr<AutoMlSystem> system,
                         MakeSystem(system_name, paper_budget));
  if (!system->SupportsTask(dataset.task())) {
    // Maps to a skipped cell (same taxonomy as unsupported budgets).
    return Status::Unimplemented(
        StrFormat("%s: task %s not supported", system_name.c_str(),
                  TaskTypeName(dataset.task())));
  }

  const uint64_t run_seed =
      HashCombine(HashCombine(config_.seed, repetition + 1),
                  HashCombine(HashString(system_name.c_str()),
                              HashString(dataset.name().c_str())));

  // The paper's outer protocol: 66/34 train/test split per dataset
  // (stratified on classification, plain on regression).
  Rng rng(run_seed);
  TrainTestIndices split = SplitForTask(dataset, 0.66, &rng);
  TrainTestData data = Materialize(dataset, split);

  // Precedence for the simulated core count: variant override, then the
  // explicit argument, then the config default. The run seed above is
  // deliberately independent of all three — variants of one cell share
  // their split and search trajectory.
  const int effective_cores =
      variant != nullptr && variant->cores > 0
          ? variant->cores
          : (cores > 0 ? cores : config_.cores);
  VirtualClock clock;
  ExecutionContext ctx(&clock, &energy_model_, effective_cores);
  ctx.SetCancelToken(cancel);
  if (config_.transform_cache) ctx.SetTransformCache(&transform_cache_);

  AutoMlOptions options;
  options.search_budget_seconds = paper_budget * config_.budget_scale;
  options.cores = ctx.cores();
  options.seed = run_seed;
  if (variant != nullptr && variant->max_inference_seconds_per_row > 0.0) {
    options.max_inference_seconds_per_row =
        variant->max_inference_seconds_per_row;
  }

  GREEN_RETURN_IF_ERROR(faults_.Check("run.fit"));
  GREEN_ASSIGN_OR_RETURN(AutoMlRunResult run,
                         system->Fit(data.train, options, &ctx));

  RunRecord record;
  record.system = system_name;
  record.dataset = dataset.name();
  record.paper_budget_seconds = paper_budget;
  record.repetition = repetition;
  record.variant = variant_name;
  record.task = dataset.task();
  record.metric_name = PrimaryMetricName(dataset.task());
  record.execution_seconds = run.actual_seconds / config_.budget_scale;
  record.execution_kwh = run.execution.kwh() / config_.budget_scale;
  record.num_pipelines = run.artifact.NumPipelines();
  record.pipelines_evaluated = run.pipelines_evaluated;
  record.best_validation_score = run.best_validation_score;
  record.attempts = attempt;
  if (config_.collect_scopes) {
    // Scope rows carry the same paper-scale units as execution_kwh /
    // execution_seconds; FLOPs are counted work and need no rescaling.
    for (const auto& [path, charge] : run.execution.scopes) {
      RunScope row;
      row.path = "execution/" + path;
      row.kwh = charge.kwh() / config_.budget_scale;
      row.seconds = charge.seconds / config_.budget_scale;
      row.flops = charge.flops;
      row.charges = charge.charges;
      record.scopes.push_back(std::move(row));
    }
  }

  // Inference stage: metered separately, normalized per instance.
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::DeadlineExceeded(system_name +
                                    ": cancelled before inference");
  }
  GREEN_RETURN_IF_ERROR(faults_.Check("run.predict"));
  EnergyMeter inference_meter(&energy_model_);
  inference_meter.Start(clock.Now());
  ctx.SetMeter(&inference_meter);
  const bool regression = data.test.task() == TaskType::kRegression;
  std::vector<int> preds;
  ProbaMatrix test_values;
  if (regression) {
    // Class-label prediction is undefined for regression; score the raw
    // predicted values (column 0) against the targets instead.
    GREEN_ASSIGN_OR_RETURN(test_values,
                           run.artifact.PredictProba(data.test, &ctx));
  } else {
    GREEN_ASSIGN_OR_RETURN(preds, run.artifact.Predict(data.test, &ctx));
  }
  const EnergyReading inference = inference_meter.Stop(clock.Now());
  ctx.SetMeter(nullptr);

  const double n_test = static_cast<double>(data.test.num_rows());
  record.inference_kwh_per_instance =
      n_test > 0 ? inference.kwh() / n_test / config_.budget_scale : 0.0;
  record.inference_seconds_per_instance =
      n_test > 0 ? inference.seconds / n_test / config_.budget_scale
                 : 0.0;
  if (config_.collect_scopes && n_test > 0) {
    // Inference scopes are normalized per test instance, like the
    // headline inference_kwh_per_instance.
    for (const auto& [path, charge] : inference.scopes) {
      RunScope row;
      row.path = "inference/" + path;
      row.kwh = charge.kwh() / n_test / config_.budget_scale;
      row.seconds = charge.seconds / n_test / config_.budget_scale;
      row.flops = charge.flops / n_test;
      row.charges = charge.charges;
      record.scopes.push_back(std::move(row));
    }
  }
  if (regression) {
    record.test_metric = PrimaryMetric(data.test, test_values);  // RMSE.
  } else {
    record.test_balanced_accuracy = BalancedAccuracy(
        data.test.labels(), preds, data.test.num_classes());
    record.test_metric = record.test_balanced_accuracy;
  }
  return record;
}

RunRecord ExperimentRunner::RunCell(const std::string& system_name,
                                    const Dataset& dataset,
                                    double paper_budget, int repetition,
                                    int cores, const CancelToken* cancel,
                                    const SweepVariant* variant) {
  RunRecord record;
  record.system = system_name;
  record.dataset = dataset.name();
  record.paper_budget_seconds = paper_budget;
  record.repetition = repetition;
  record.task = dataset.task();
  record.metric_name = PrimaryMetricName(dataset.task());
  if (variant != nullptr) record.variant = variant->name;

  // The paper's protocol: systems whose minimum supported search time
  // exceeds the cell's budget are not run at all (ASKL below 30 s, TPOT
  // below 60 s). Recorded, not dropped — the skip is data.
  if (paper_budget < MinBudget(system_name)) {
    record.outcome = RunOutcome::kSkipped;
    record.error = StrFormat("%s: budget %.6gs below system minimum %.6gs",
                             system_name.c_str(), paper_budget,
                             MinBudget(system_name));
    record.attempts = 0;
    return record;
  }

  // Backoff advances a bookkeeping virtual clock (logged, deterministic)
  // rather than sleeping the host thread: a retried sweep costs the same
  // wall time as an unretried one.
  VirtualClock backoff_clock;
  int attempt = 0;
  while (true) {
    ++attempt;
    Result<RunRecord> run = RunOne(system_name, dataset, paper_budget,
                                   repetition, cores, cancel, attempt,
                                   variant);
    if (run.ok()) {
      record = std::move(run).value();
      record.outcome = RunOutcome::kOk;
      record.error.clear();
      record.attempts = attempt;
      return record;
    }
    const Status& status = run.status();
    const RunOutcome outcome = OutcomeForStatus(status);
    const bool cancelled = cancel != nullptr && cancel->cancelled();
    if (outcome == RunOutcome::kFailed && IsRetryable(status) &&
        attempt < config_.retry.max_attempts && !cancelled) {
      const double backoff = config_.retry.BackoffSeconds(attempt);
      backoff_clock.Advance(backoff);
      LogDebug(StrFormat(
          "retrying %s on %s (attempt %d/%d, backoff %.3gs virtual): %s",
          system_name.c_str(), dataset.name().c_str(), attempt + 1,
          config_.retry.max_attempts, backoff,
          status.ToString().c_str()));
      continue;
    }
    record.outcome = outcome;
    record.error = status.ToString();
    record.attempts = attempt;
    return record;
  }
}

Result<std::vector<RunRecord>> ExperimentRunner::Sweep(
    const std::vector<std::string>& systems,
    const std::vector<double>& paper_budgets) {
  return Sweep(systems, paper_budgets,
               std::vector<SweepVariant>{SweepVariant{}});
}

Result<std::vector<RunRecord>> ExperimentRunner::Sweep(
    const std::vector<std::string>& systems,
    const std::vector<double>& paper_budgets,
    const std::vector<SweepVariant>& variants) {
  if (variants.empty()) {
    return Status::InvalidArgument("Sweep: empty variant list");
  }
  {
    std::map<std::string, int> seen;
    for (const SweepVariant& variant : variants) {
      if (++seen[variant.name] > 1) {
        return Status::InvalidArgument(
            "Sweep: duplicate variant name \"" + variant.name +
            "\" (names are part of the cell identity)");
      }
    }
  }
  const ShardSpec shard{config_.shard_index, config_.shard_count};
  if (!shard.valid()) {
    return Status::InvalidArgument("Sweep: invalid shard spec " +
                                   shard.ToString());
  }

  // Enumerate every cell up front in the canonical (system, budget,
  // variant, dataset, repetition) order — including cells below a
  // system's minimum budget, which come back as `skipped` records. Run
  // seeds and fault draws depend only on the cell, never on execution
  // order, so the parallel path below is bit-identical to running this
  // list sequentially. Under sharding the enumeration (and therefore
  // every cell's global index) is identical in all shard processes; this
  // process keeps only the cells its shard owns. Ownership is
  // round-robin (index % count) rather than contiguous slices because
  // enumeration is system-major — a contiguous split would hand one
  // shard all of the cheapest system's cells.
  struct Cell {
    const std::string* system;
    double budget;
    const SweepVariant* variant;
    const Dataset* dataset;
    int rep;
    int64_t index;  ///< Global enumeration index, identical across shards.
  };
  std::vector<Cell> cells;
  int64_t total_cells = 0;
  for (const std::string& system : systems) {
    for (double budget : paper_budgets) {
      for (const SweepVariant& variant : variants) {
        for (const Dataset& dataset : suite_) {
          for (int rep = 0; rep < config_.repetitions; ++rep) {
            const int64_t index = total_cells++;
            if (!shard.Owns(index)) continue;
            cells.push_back(
                Cell{&system, budget, &variant, &dataset, rep, index});
          }
        }
      }
      // TabPFN has no search-time parameter: one budget point suffices.
      if (system == "tabpfn") break;
    }
  }

  // Journal bootstrap. Resume loads completed cells keyed by
  // (system, dataset, budget, rep[, variant]); a fresh journaled sweep
  // truncates.
  std::map<std::string, RunRecord> journaled;
  last_sweep_resumed_cells_ = 0;
  last_sweep_journal_append_failures_ = 0;
  last_sweep_resumed_from_incomplete_journal_ = false;
  if (!config_.journal_path.empty()) {
    if (config_.resume) {
      GREEN_ASSIGN_OR_RETURN(JournalContents previous,
                             ReadJournal(config_.journal_path));
      if (previous.append_failures > 0) {
        // A previous sweep lost appends: each journaled record is still
        // individually trustworthy, but the journal as a whole must not
        // be treated as a complete transcript — any cell it is missing
        // re-runs below.
        last_sweep_resumed_from_incomplete_journal_ = true;
        LogWarning(StrFormat(
            "journal %s is marked incomplete (%zu append(s) lost by a "
            "previous sweep): resuming the cells it holds, re-running "
            "the rest",
            config_.journal_path.c_str(), previous.append_failures));
      }
      // Repeated resume cycles can journal the same cell several times
      // (a cell re-run after a crash mid-append). Later lines supersede
      // earlier ones, matching the order Sweep appended them.
      size_t superseded = 0;
      for (RunRecord& record : previous.records) {
        const auto inserted = journaled.insert_or_assign(
            RunRecordCellKey(record), std::move(record));
        if (!inserted.second) ++superseded;
      }
      if (superseded > 0) {
        LogInfo(StrFormat(
            "journal %s: %zu superseded record(s); run --compact-journal "
            "to rewrite it deduplicated",
            config_.journal_path.c_str(), superseded));
      }
    } else {
      FILE* f = std::fopen(config_.journal_path.c_str(), "w");
      if (f == nullptr) {
        return Status::IoError("cannot open journal " +
                               config_.journal_path);
      }
      std::fclose(f);
    }
  }

  const int jobs =
      std::min<int>(std::max(1, config_.jobs),
                    static_cast<int>(std::max<size_t>(1, cells.size())));
  std::vector<std::optional<RunRecord>> slots(cells.size());

  // Watchdog state: per-cell cancel tokens plus host start timestamps
  // (0 = not started, -1 = done). The watchdog thread scans running
  // cells and cancels any whose host wall time exceeds the allowance;
  // the cell's search loop notices at its next loop head and unwinds
  // with DEADLINE_EXCEEDED -> recorded as `timeout`.
  const bool watchdog_enabled = config_.cell_timeout_seconds > 0.0;
  std::vector<CancelToken> tokens(cells.size());
  std::vector<std::atomic<int64_t>> start_ns(cells.size());
  for (auto& s : start_ns) s.store(0, std::memory_order_relaxed);
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  if (watchdog_enabled) {
    const int64_t allowance_ns =
        static_cast<int64_t>(config_.cell_timeout_seconds * 1e9);
    watchdog = std::thread([&] {
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        const int64_t now =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        for (size_t i = 0; i < cells.size(); ++i) {
          const int64_t started =
              start_ns[i].load(std::memory_order_acquire);
          if (started > 0 && now - started > allowance_ns) {
            tokens[i].Cancel();
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  std::mutex journal_mutex;
  /// Slot indices whose journal append failed; retried once at sweep
  /// end. Guarded by journal_mutex.
  std::vector<size_t> failed_appends;
  std::atomic<size_t> resumed{0};
  const auto start = std::chrono::steady_clock::now();
  ParallelFor(cells.size(), jobs, [&](size_t i) {
    const Cell& cell = cells[i];
    const std::string key =
        RunRecordCellKey(*cell.system, cell.dataset->name(), cell.budget,
                         cell.rep, cell.variant->name);

    auto journaled_cell = journaled.find(key);
    if (journaled_cell != journaled.end()) {
      slots[i].emplace(journaled_cell->second);
      // The stamp is recomputed rather than trusted from the file: the
      // enumeration here is the one the merge must agree with.
      slots[i]->cell_index = shard.count > 1 ? cell.index : -1;
      resumed.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    // `sweep.cell` is the per-cell injection site the crash/resume tests
    // use (kind=abort kills the process mid-sweep with the journal
    // holding only the cells finished so far). Scoped to the cell so
    // probabilistic draws are jobs-independent.
    {
      FaultScope scope("sweep.cell|" + key);
      const Status injected = faults_.Check("sweep.cell");
      if (!injected.ok()) {
        RunRecord record;
        record.system = *cell.system;
        record.dataset = cell.dataset->name();
        record.paper_budget_seconds = cell.budget;
        record.repetition = cell.rep;
        record.task = cell.dataset->task();
        record.metric_name = PrimaryMetricName(cell.dataset->task());
        record.variant = cell.variant->name;
        record.outcome = OutcomeForStatus(injected);
        record.error = injected.ToString();
        record.attempts = 0;
        if (shard.count > 1) record.cell_index = cell.index;
        slots[i].emplace(std::move(record));
        return;
      }
    }

    if (watchdog_enabled) {
      const int64_t now =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      start_ns[i].store(now > 0 ? now : 1, std::memory_order_release);
    }
    RunRecord record =
        RunCell(*cell.system, *cell.dataset, cell.budget, cell.rep,
                /*cores=*/0, watchdog_enabled ? &tokens[i] : nullptr,
                cell.variant);
    start_ns[i].store(-1, std::memory_order_release);
    if (shard.count > 1) record.cell_index = cell.index;

    if (!config_.journal_path.empty()) {
      // `journal.append` makes append failures injectable (disk full,
      // permissions yanked mid-sweep). Cell-scoped so probabilistic
      // draws are jobs-independent.
      Status appended;
      {
        FaultScope scope("journal.append|" + key);
        appended = faults_.Check("journal.append");
      }
      std::lock_guard<std::mutex> lock(journal_mutex);
      if (appended.ok()) {
        appended = AppendRecordJsonl(record, config_.journal_path);
      }
      if (!appended.ok()) {
        // The sweep's results are still intact in memory; losing journal
        // durability is worth a warning, not a failed sweep — but it
        // must be COUNTED, or a later --resume would mistake the journal
        // for a complete transcript.
        LogWarning("journal append failed: " + appended.ToString() +
                   " (will retry at sweep end)");
        failed_appends.push_back(i);
      }
    }
    slots[i].emplace(std::move(record));
  });

  if (watchdog_enabled) {
    watchdog_stop.store(true, std::memory_order_release);
    watchdog.join();
  }

  last_sweep_wall_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  // Collect in enumeration order, independent of completion order.
  std::vector<RunRecord> records;
  records.reserve(cells.size());
  size_t ok_cells = 0, failed = 0, timeouts = 0, skipped = 0;
  for (size_t i = 0; i < cells.size(); ++i) {
    RunRecord& record = *slots[i];
    switch (record.outcome) {
      case RunOutcome::kOk:
        ++ok_cells;
        break;
      case RunOutcome::kFailed:
        ++failed;
        break;
      case RunOutcome::kTimeout:
        ++timeouts;
        break;
      case RunOutcome::kSkipped:
        ++skipped;
        break;
    }
    if (!record.ok() && record.outcome != RunOutcome::kSkipped) {
      LogWarning(StrFormat("cell %s on %s [%.6gs rep %d]: %s (%s, %d "
                           "attempt(s))",
                           record.system.c_str(), record.dataset.c_str(),
                           record.paper_budget_seconds, record.repetition,
                           RunOutcomeName(record.outcome),
                           record.error.c_str(), record.attempts));
    }
    records.push_back(std::move(record));
  }
  last_sweep_resumed_cells_ = resumed.load(std::memory_order_relaxed);
  const size_t journal_orphans =
      journaled.size() - last_sweep_resumed_cells_;
  if (journal_orphans > 0) {
    LogWarning(StrFormat(
        "journal has %zu record(s) matching no enumerated cell",
        journal_orphans));
  }

  // End-of-sweep retry for failed appends: a transient failure (brief
  // disk-full, single-shot injected fault) recovers here; persistent
  // ones are counted lost and flagged in the journal itself so a later
  // --resume cannot mistake it for a complete transcript.
  size_t lost_appends = 0;
  for (size_t i : failed_appends) {
    Status retried;
    {
      // Same site as the first attempt — a persistent injected fault
      // (probability 1) fails the retry too; a single-shot `#n` clause
      // has been consumed and lets it through. Re-scoped so
      // probabilistic draws re-roll.
      FaultScope scope("journal.append|" + RunRecordCellKey(records[i]) +
                       "|retry");
      retried = faults_.Check("journal.append");
    }
    if (retried.ok()) {
      retried = AppendRecordJsonl(records[i], config_.journal_path);
    }
    if (!retried.ok()) {
      ++lost_appends;
      LogWarning("journal append retry failed: " + retried.ToString());
    }
  }
  last_sweep_journal_append_failures_ = lost_appends;
  if (lost_appends > 0) {
    const Status marker = AppendJournalIncompleteMarker(
        lost_appends, config_.journal_path);
    LogWarning(StrFormat(
        "journal %s is NOT a complete transcript: %zu record(s) lost%s",
        config_.journal_path.c_str(), lost_appends,
        marker.ok() ? " (incompleteness marker appended)"
                    : "; marking it incomplete ALSO failed"));
  } else if (last_sweep_resumed_from_incomplete_journal_ &&
             journal_orphans == 0 && !config_.journal_path.empty()) {
    // Full recovery: this resumed sweep holds every enumerated cell and
    // journaled every re-run one, so the journal can be rewritten as the
    // complete transcript it now is, clearing the incompleteness marker.
    const std::string tmp = config_.journal_path + ".rewrite.tmp";
    Status rewritten = WriteRecordsJsonl(records, tmp);
    if (rewritten.ok() &&
        std::rename(tmp.c_str(), config_.journal_path.c_str()) != 0) {
      std::remove(tmp.c_str());
      rewritten = Status::IoError("cannot replace " + config_.journal_path);
    }
    if (rewritten.ok()) {
      LogInfo("journal " + config_.journal_path +
              ": fully recovered from a previous run's lost appends; "
              "rewritten complete");
    } else {
      LogWarning("journal recovery rewrite failed: " +
                 rewritten.ToString());
    }
  }

  const std::string shard_note =
      shard.count > 1
          ? StrFormat(" [shard %s: %zu of %lld cells]",
                      shard.ToString().c_str(), cells.size(),
                      static_cast<long long>(total_cells))
          : std::string();
  LogInfo(StrFormat(
      "sweep%s: %zu cells (%zu ok, %zu failed, %zu timeout, %zu skipped, "
      "%zu resumed) on %d worker thread(s) in %.2fs wall (%.1f cells/s)",
      shard_note.c_str(), cells.size(), ok_cells, failed, timeouts,
      skipped, last_sweep_resumed_cells_, jobs, last_sweep_wall_seconds_,
      last_sweep_wall_seconds_ > 0.0
          ? static_cast<double>(cells.size()) / last_sweep_wall_seconds_
          : 0.0));
  if (config_.transform_cache) {
    const TransformCacheStats cache = transform_cache_.Stats();
    LogInfo(StrFormat(
        "transform cache: %llu hit(s), %llu miss(es), %llu predict hit(s), "
        "%llu predict miss(es), %llu eviction(s), "
        "%zu entries (%.1f MB of %.0f MB)",
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(cache.predict_hits),
        static_cast<unsigned long long>(cache.predict_misses),
        static_cast<unsigned long long>(cache.evictions), cache.entries,
        static_cast<double>(cache.bytes) / (1024.0 * 1024.0),
        config_.transform_cache_mb));
  }
  return records;
}

}  // namespace green
