#include "green/bench_util/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>

#include "green/automl/caml_system.h"
#include "green/automl/flaml_system.h"
#include "green/automl/gluon_system.h"
#include "green/automl/random_search_system.h"
#include "green/automl/tabpfn_system.h"
#include "green/automl/tpot_system.h"
#include "green/common/logging.h"
#include "green/common/stringutil.h"
#include "green/common/thread_pool.h"
#include "green/data/meta_corpus.h"
#include "green/ml/metrics.h"
#include "green/table/split.h"

namespace green {

int JobsFromEnv() {
  const char* jobs = std::getenv("GREEN_JOBS");
  if (jobs == nullptr || jobs[0] == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(jobs, &end, 10);
  if (end == jobs) return 1;
  if (parsed == 0) return ThreadPool::DefaultThreads();
  return static_cast<int>(std::max(1L, parsed));
}

ExperimentConfig ExperimentConfig::FromEnv() {
  ExperimentConfig config;
  config.profile = SimulationProfile::FromEnv();
  const char* full = std::getenv("GREEN_FULL");
  if (full != nullptr && full[0] == '1') {
    config.dataset_limit = 0;  // All 39 tasks.
    config.repetitions = 10;
  }
  config.jobs = JobsFromEnv();
  return config;
}

const std::vector<std::string>& AllSystemNames() {
  static const std::vector<std::string>* kNames =
      new std::vector<std::string>{
          "tabpfn", "caml",         "caml_tuned",   "flaml",
          "autogluon", "autogluon_refit", "autosklearn1",
          "autosklearn2", "tpot",       "random_search"};
  return *kNames;
}

ExperimentRunner::ExperimentRunner(const ExperimentConfig& config)
    : config_(config),
      energy_model_(config.machine),
      tuned_store_(TunedConfigStore::PaperDefaults()) {
  auto suite = InstantiateAmlbSuite(config_.profile, config_.seed,
                                    config_.dataset_limit);
  GREEN_CHECK(suite.ok());
  suite_ = std::move(suite).value();
}

namespace {

/// Constructs a system purely to query its declared properties
/// (MinBudgetSeconds etc.) — no tuned parameters, no meta-store, and
/// therefore no side effects. Construction of every system is cheap.
Result<std::unique_ptr<AutoMlSystem>> MakeProbeSystem(
    const std::string& system_name) {
  if (system_name == "tabpfn") {
    return std::unique_ptr<AutoMlSystem>(new TabPfnSystem());
  }
  if (system_name == "caml") {
    return std::unique_ptr<AutoMlSystem>(new CamlSystem());
  }
  if (system_name == "caml_tuned") {
    return std::unique_ptr<AutoMlSystem>(
        new CamlSystem(CamlParams(), "caml_tuned"));
  }
  if (system_name == "flaml") {
    return std::unique_ptr<AutoMlSystem>(new FlamlSystem());
  }
  if (system_name == "autogluon" || system_name == "autogluon_refit") {
    return std::unique_ptr<AutoMlSystem>(new GluonSystem());
  }
  if (system_name == "autosklearn1" || system_name == "autosklearn2") {
    AsklParams params;
    params.warm_start = system_name == "autosklearn2";
    return std::unique_ptr<AutoMlSystem>(
        new AsklSystem(params, /*meta_store=*/nullptr));
  }
  if (system_name == "tpot") {
    return std::unique_ptr<AutoMlSystem>(new TpotSystem());
  }
  if (system_name == "random_search") {
    return std::unique_ptr<AutoMlSystem>(new RandomSearchSystem());
  }
  return Status::NotFound("unknown system: " + system_name);
}

}  // namespace

double ExperimentRunner::MinBudget(const std::string& system_name) const {
  // Single source of truth: the system's own declaration, so harness
  // gating can never drift from AutoMlSystem::MinBudgetSeconds().
  auto probe = MakeProbeSystem(system_name);
  if (!probe.ok()) return 0.0;  // RunOne reports the NotFound per cell.
  return (*probe)->MinBudgetSeconds();
}

Status ExperimentRunner::EnsureMetaStore() {
  // ASKL2's warm start is meta-learned on a repository of pre-searched
  // datasets; the cost is charged to the development stage (the paper:
  // 140 datasets x 24 h of offline search). Built exactly once even when
  // many sweep workers hit ASKL cells concurrently: call_once blocks the
  // others until the store (and its development-energy charge) is ready.
  std::call_once(meta_once_, [this] {
    meta_status_ = [this]() -> Status {
      MetaCorpusOptions corpus_options;
      corpus_options.num_datasets = 16;
      corpus_options.seed = HashCombine(config_.seed, 0x5743);
      GREEN_ASSIGN_OR_RETURN(
          std::vector<Dataset> corpus,
          GenerateMetaCorpus(corpus_options, config_.profile));

      VirtualClock clock;
      ExecutionContext ctx(&clock, &energy_model_, config_.cores);
      EnergyMeter meter(&energy_model_);
      meter.Start(clock.Now());
      ctx.SetMeter(&meter);
      GREEN_ASSIGN_OR_RETURN(
          AsklMetaStore store,
          AsklMetaStore::BuildFromCorpus(corpus, /*evals_per_dataset=*/6,
                                         HashCombine(config_.seed, 0x5744),
                                         &ctx));
      const EnergyReading reading = meter.Stop(clock.Now());
      development_kwh_.fetch_add(reading.kwh() / config_.budget_scale);
      meta_store_ = std::make_unique<AsklMetaStore>(std::move(store));
      return Status::Ok();
    }();
  });
  return meta_status_;
}

Result<std::unique_ptr<AutoMlSystem>> ExperimentRunner::MakeSystem(
    const std::string& system_name, double paper_budget) {
  if (system_name == "tabpfn") {
    return std::unique_ptr<AutoMlSystem>(new TabPfnSystem());
  }
  if (system_name == "caml") {
    return std::unique_ptr<AutoMlSystem>(new CamlSystem());
  }
  if (system_name == "caml_tuned") {
    GREEN_ASSIGN_OR_RETURN(CamlParams params,
                           tuned_store_.Get(paper_budget));
    return std::unique_ptr<AutoMlSystem>(
        new CamlSystem(params, "caml_tuned"));
  }
  if (system_name == "flaml") {
    return std::unique_ptr<AutoMlSystem>(new FlamlSystem());
  }
  if (system_name == "autogluon") {
    return std::unique_ptr<AutoMlSystem>(new GluonSystem());
  }
  if (system_name == "autogluon_refit") {
    GluonParams params;
    params.refit_for_inference = true;
    return std::unique_ptr<AutoMlSystem>(new GluonSystem(params));
  }
  if (system_name == "autosklearn1" || system_name == "autosklearn2") {
    GREEN_RETURN_IF_ERROR(EnsureMetaStore());
    AsklParams params;
    params.warm_start = system_name == "autosklearn2";
    return std::unique_ptr<AutoMlSystem>(
        new AsklSystem(params, meta_store_.get()));
  }
  if (system_name == "tpot") {
    return std::unique_ptr<AutoMlSystem>(new TpotSystem());
  }
  if (system_name == "random_search") {
    return std::unique_ptr<AutoMlSystem>(new RandomSearchSystem());
  }
  return Status::NotFound("unknown system: " + system_name);
}

Result<RunRecord> ExperimentRunner::RunOne(const std::string& system_name,
                                           const Dataset& dataset,
                                           double paper_budget,
                                           int repetition, int cores) {
  GREEN_ASSIGN_OR_RETURN(std::unique_ptr<AutoMlSystem> system,
                         MakeSystem(system_name, paper_budget));

  const uint64_t run_seed =
      HashCombine(HashCombine(config_.seed, repetition + 1),
                  HashCombine(HashString(system_name.c_str()),
                              HashString(dataset.name().c_str())));

  // The paper's outer protocol: 66/34 train/test split per dataset.
  Rng rng(run_seed);
  TrainTestIndices split = StratifiedSplit(dataset, 0.66, &rng);
  TrainTestData data = Materialize(dataset, split);

  VirtualClock clock;
  ExecutionContext ctx(&clock, &energy_model_,
                       cores > 0 ? cores : config_.cores);

  AutoMlOptions options;
  options.search_budget_seconds = paper_budget * config_.budget_scale;
  options.cores = ctx.cores();
  options.seed = run_seed;

  GREEN_ASSIGN_OR_RETURN(AutoMlRunResult run,
                         system->Fit(data.train, options, &ctx));

  RunRecord record;
  record.system = system_name;
  record.dataset = dataset.name();
  record.paper_budget_seconds = paper_budget;
  record.repetition = repetition;
  record.execution_seconds = run.actual_seconds / config_.budget_scale;
  record.execution_kwh = run.execution.kwh() / config_.budget_scale;
  record.num_pipelines = run.artifact.NumPipelines();
  record.pipelines_evaluated = run.pipelines_evaluated;
  record.best_validation_score = run.best_validation_score;

  // Inference stage: metered separately, normalized per instance.
  EnergyMeter inference_meter(&energy_model_);
  inference_meter.Start(clock.Now());
  ctx.SetMeter(&inference_meter);
  GREEN_ASSIGN_OR_RETURN(std::vector<int> preds,
                         run.artifact.Predict(data.test, &ctx));
  const EnergyReading inference = inference_meter.Stop(clock.Now());
  ctx.SetMeter(nullptr);

  const double n_test = static_cast<double>(data.test.num_rows());
  record.inference_kwh_per_instance =
      n_test > 0 ? inference.kwh() / n_test / config_.budget_scale : 0.0;
  record.inference_seconds_per_instance =
      n_test > 0 ? inference.seconds / n_test / config_.budget_scale
                 : 0.0;
  record.test_balanced_accuracy = BalancedAccuracy(
      data.test.labels(), preds, data.test.num_classes());
  return record;
}

Result<std::vector<RunRecord>> ExperimentRunner::Sweep(
    const std::vector<std::string>& systems,
    const std::vector<double>& paper_budgets) {
  // Enumerate every cell up front in the canonical (system, budget,
  // dataset, repetition) order. Run seeds depend only on the cell, never
  // on execution order, so the parallel path below is bit-identical to
  // running this list sequentially.
  struct Cell {
    const std::string* system;
    double budget;
    const Dataset* dataset;
    int rep;
  };
  std::vector<Cell> cells;
  for (const std::string& system : systems) {
    for (double budget : paper_budgets) {
      if (budget < MinBudget(system)) continue;
      for (const Dataset& dataset : suite_) {
        for (int rep = 0; rep < config_.repetitions; ++rep) {
          cells.push_back(Cell{&system, budget, &dataset, rep});
        }
      }
      // TabPFN has no search-time parameter: one budget point suffices.
      if (system == "tabpfn") break;
    }
  }

  const int jobs =
      std::min<int>(std::max(1, config_.jobs),
                    static_cast<int>(std::max<size_t>(1, cells.size())));
  std::vector<std::optional<Result<RunRecord>>> slots(cells.size());
  const auto start = std::chrono::steady_clock::now();
  ParallelFor(cells.size(), jobs, [&](size_t i) {
    const Cell& cell = cells[i];
    slots[i].emplace(
        RunOne(*cell.system, *cell.dataset, cell.budget, cell.rep));
  });
  last_sweep_wall_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  LogInfo(StrFormat(
      "sweep: %zu cells on %d worker thread(s) in %.2fs wall (%.1f "
      "cells/s)",
      cells.size(), jobs, last_sweep_wall_seconds_,
      last_sweep_wall_seconds_ > 0.0
          ? static_cast<double>(cells.size()) / last_sweep_wall_seconds_
          : 0.0));

  // Collect in enumeration order, independent of completion order.
  std::vector<RunRecord> records;
  records.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    Result<RunRecord>& record = *slots[i];
    if (!record.ok()) {
      LogWarning("run failed: " + *cells[i].system + " on " +
                 cells[i].dataset->name() + ": " +
                 record.status().ToString());
      continue;
    }
    records.push_back(std::move(record).value());
  }
  return records;
}

}  // namespace green
