#ifndef GREEN_BENCH_UTIL_RECORD_IO_H_
#define GREEN_BENCH_UTIL_RECORD_IO_H_

#include <string>
#include <vector>

#include "green/bench_util/experiment.h"

namespace green {

/// Serialization of experiment records, mirroring the paper's practice of
/// publishing "the raw results of all 10 runs for all search times,
/// datasets, and systems" in its artifact repository. JSON Lines for
/// programmatic use, CSV for spreadsheets.

/// One record as a single-line JSON object.
std::string RecordToJson(const RunRecord& record);

/// Parses a single-line JSON object produced by RecordToJson.
Result<RunRecord> RecordFromJson(const std::string& line);

/// Whole-file round trip (one JSON object per line).
Status WriteRecordsJsonl(const std::vector<RunRecord>& records,
                         const std::string& path);
Result<std::vector<RunRecord>> ReadRecordsJsonl(const std::string& path);

/// CSV with a header row.
std::string RecordsToCsv(const std::vector<RunRecord>& records);
Status WriteRecordsCsv(const std::vector<RunRecord>& records,
                       const std::string& path);

/// Appends one record to a JSONL journal: open, write one line, flush,
/// close. One syscall-bounded append per completed sweep cell keeps the
/// journal crash-consistent — a killed process loses at most the cell it
/// was writing.
Status AppendRecordJsonl(const RunRecord& record, const std::string& path);

/// Reads a sweep journal for resume. Unlike ReadRecordsJsonl this is
/// deliberately forgiving: a missing file is an empty journal (first
/// run), and a trailing half-written line from a crash is skipped with a
/// warning instead of failing the whole resume.
Result<std::vector<RunRecord>> ReadJournalJsonl(const std::string& path);

/// Rewrites a journal in place keeping only the LAST record per sweep
/// cell (repeated resume cycles append superseding lines). Surviving
/// records keep the order in which their cell first appeared; unparseable
/// lines are dropped like ReadJournalJsonl drops them. The rewrite goes
/// through a temp file + rename so a crash mid-compaction cannot lose
/// the journal. Returns the number of lines removed.
Result<size_t> CompactJournalJsonl(const std::string& path);

}  // namespace green

#endif  // GREEN_BENCH_UTIL_RECORD_IO_H_
