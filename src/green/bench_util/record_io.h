#ifndef GREEN_BENCH_UTIL_RECORD_IO_H_
#define GREEN_BENCH_UTIL_RECORD_IO_H_

#include <string>
#include <vector>

#include "green/bench_util/experiment.h"

namespace green {

/// Serialization of experiment records, mirroring the paper's practice of
/// publishing "the raw results of all 10 runs for all search times,
/// datasets, and systems" in its artifact repository. JSON Lines for
/// programmatic use, CSV for spreadsheets.

/// One record as a single-line JSON object.
std::string RecordToJson(const RunRecord& record);

/// Parses a single-line JSON object produced by RecordToJson.
Result<RunRecord> RecordFromJson(const std::string& line);

/// Whole-file round trip (one JSON object per line).
Status WriteRecordsJsonl(const std::vector<RunRecord>& records,
                         const std::string& path);
Result<std::vector<RunRecord>> ReadRecordsJsonl(const std::string& path);

/// CSV with a header row.
std::string RecordsToCsv(const std::vector<RunRecord>& records);
Status WriteRecordsCsv(const std::vector<RunRecord>& records,
                       const std::string& path);

/// Appends one record to a JSONL journal: open, write one line, flush,
/// close. One syscall-bounded append per completed sweep cell keeps the
/// journal crash-consistent — a killed process loses at most the cell it
/// was writing.
Status AppendRecordJsonl(const RunRecord& record, const std::string& path);

/// Appends a `{"journal_incomplete":N}` marker line recording that N
/// cell records could not be journaled (append failures that survived
/// the end-of-sweep retry pass). ReadJournal sums the markers so a later
/// --resume knows the journal must not be treated as a complete
/// transcript. Best-effort by nature: if appends are failing, the
/// marker append may fail too.
Status AppendJournalIncompleteMarker(size_t lost_records,
                                     const std::string& path);

/// What ReadJournal found: the parsed records plus the journal's health.
struct JournalContents {
  std::vector<RunRecord> records;
  /// Sum of `{"journal_incomplete":N}` markers — records a previous
  /// sweep failed to append. > 0 means the journal is known-incomplete.
  size_t append_failures = 0;
  /// The file did not end in a newline: the writer was killed
  /// mid-append and the partial trailing line was discarded.
  bool truncated_tail = false;
};

/// Reads a sweep journal for resume. Unlike ReadRecordsJsonl this is
/// deliberately forgiving: a missing file is an empty journal (first
/// run); a trailing line without a final newline is a crash mid-append
/// and is discarded with a warning EVEN IF it parses (a truncated line
/// can still be field-complete, e.g. "attempts":12 cut to
/// "attempts":1 — accepting it would resume a silently corrupted cell);
/// any other unparseable line is skipped with a warning instead of
/// failing the whole resume.
Result<JournalContents> ReadJournal(const std::string& path);

/// ReadJournal, records only (compatibility shim).
Result<std::vector<RunRecord>> ReadJournalJsonl(const std::string& path);

/// Recombines per-shard sweep journals (any argument order, any
/// per-shard --jobs) into the single record stream an unsharded sweep
/// would have produced. Shard records carry their global enumeration
/// index ("cell"): after per-shard dedupe (later lines supersede
/// earlier, as resume does), the records are ordered by that index,
/// checked for gaps/duplicates — an incomplete or double-owned shard
/// set is an error, not a silently short file — and written with the
/// index stripped, byte-identical to WriteRecordsJsonl of an unsharded
/// Sweep's records. Returns the number of merged records.
Result<size_t> MergeShardJournals(const std::vector<std::string>& shard_paths,
                                  const std::string& out_path);

/// The pure in-memory half of MergeShardJournals, for callers that
/// already hold the shard record lists.
Result<std::vector<RunRecord>> MergeShardRecords(
    std::vector<std::vector<RunRecord>> shards);

/// Rewrites a journal in place keeping only the LAST record per sweep
/// cell (repeated resume cycles append superseding lines). Surviving
/// records keep the order in which their cell first appeared; unparseable
/// lines are dropped like ReadJournalJsonl drops them. The rewrite goes
/// through a temp file + rename so a crash mid-compaction cannot lose
/// the journal. Returns the number of lines removed.
Result<size_t> CompactJournalJsonl(const std::string& path);

}  // namespace green

#endif  // GREEN_BENCH_UTIL_RECORD_IO_H_
