#include "green/bench_util/record_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "green/common/logging.h"
#include "green/common/stringutil.h"

namespace green {

namespace {

/// JSON string escaping for our field values. Every control character is
/// escaped (RFC 8259 requires it — a raw \t or \r in a dataset name would
/// emit invalid JSON); Unescape below inverts this exactly.
std::string Escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Extracts the raw token after `"key":` in a flat one-line JSON object.
/// Good enough for the records this library itself writes.
Result<std::string> ExtractField(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return Status::NotFound("missing field: " + key);
  }
  size_t start = pos + needle.size();
  while (start < line.size() && line[start] == ' ') ++start;
  if (start >= line.size()) return Status::NotFound("truncated: " + key);
  if (line[start] == '"') {
    // String value: scan to the closing unescaped quote, inverting every
    // sequence Escape emits.
    std::string out;
    for (size_t i = start + 1; i < line.size(); ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        const char c = line[++i];
        switch (c) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (i + 4 >= line.size()) {
              return Status::InvalidArgument("truncated \\u escape: " +
                                             key);
            }
            const unsigned long code =
                std::strtoul(line.substr(i + 1, 4).c_str(), nullptr, 16);
            // Escape only emits \u00XX for control bytes.
            out += static_cast<char>(code & 0xFF);
            i += 4;
            break;
          }
          default:
            out += c;  // \" \\ and \/ pass through.
        }
      } else if (line[i] == '"') {
        return out;
      } else {
        out += line[i];
      }
    }
    return Status::InvalidArgument("unterminated string: " + key);
  }
  size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return std::string(Trim(line.substr(start, end - start)));
}

}  // namespace

std::string RecordToJson(const RunRecord& record) {
  std::string out = StrFormat(
      "{\"system\":\"%s\",\"dataset\":\"%s\",\"budget_s\":%.6g,"
      "\"repetition\":%d,\"balanced_accuracy\":%.10g,"
      "\"execution_seconds\":%.10g,\"execution_kwh\":%.10g,"
      "\"inference_kwh_per_instance\":%.10g,"
      "\"inference_seconds_per_instance\":%.10g,\"num_pipelines\":%zu,"
      "\"pipelines_evaluated\":%d,\"best_validation_score\":%.10g,"
      "\"outcome\":\"%s\",\"error\":\"%s\",\"attempts\":%d",
      Escape(record.system).c_str(), Escape(record.dataset).c_str(),
      record.paper_budget_seconds, record.repetition,
      record.test_balanced_accuracy, record.execution_seconds,
      record.execution_kwh, record.inference_kwh_per_instance,
      record.inference_seconds_per_instance, record.num_pipelines,
      record.pipelines_evaluated, record.best_validation_score,
      RunOutcomeName(record.outcome), Escape(record.error).c_str(),
      record.attempts);
  // Every field below is emitted only when present, so records written
  // without the corresponding feature stay byte-identical to files
  // produced before the feature existed.
  if (record.task == TaskType::kRegression) {
    // Classification cells (binary AND multiclass) omit the task triple:
    // their metric has always been balanced accuracy, and emitting it
    // would perturb every pre-existing record stream.
    out += StrFormat(",\"task\":\"%s\",\"metric\":\"%s\","
                     "\"test_metric\":%.10g",
                     TaskTypeName(record.task),
                     Escape(record.metric_name).c_str(),
                     record.test_metric);
  }
  if (!record.variant.empty()) {
    out += StrFormat(",\"variant\":\"%s\"",
                     Escape(record.variant).c_str());
  }
  if (record.cell_index >= 0) {
    out += StrFormat(",\"cell\":%lld",
                     static_cast<long long>(record.cell_index));
  }
  if (!record.scopes.empty()) {
    out += ",\"scopes\":[";
    for (size_t i = 0; i < record.scopes.size(); ++i) {
      const RunScope& s = record.scopes[i];
      if (i > 0) out += ',';
      out += StrFormat(
          "{\"path\":\"%s\",\"kwh\":%.10g,\"seconds\":%.10g,"
          "\"flops\":%.10g,\"charges\":%llu}",
          Escape(s.path).c_str(), s.kwh, s.seconds, s.flops,
          static_cast<unsigned long long>(s.charges));
    }
    out += ']';
  }
  out += '}';
  return out;
}

Result<RunRecord> RecordFromJson(const std::string& line) {
  RunRecord record;
  GREEN_ASSIGN_OR_RETURN(record.system, ExtractField(line, "system"));
  GREEN_ASSIGN_OR_RETURN(record.dataset, ExtractField(line, "dataset"));
  GREEN_ASSIGN_OR_RETURN(std::string budget,
                         ExtractField(line, "budget_s"));
  record.paper_budget_seconds = std::strtod(budget.c_str(), nullptr);
  GREEN_ASSIGN_OR_RETURN(std::string rep,
                         ExtractField(line, "repetition"));
  record.repetition = static_cast<int>(std::strtol(rep.c_str(), nullptr,
                                                   10));
  GREEN_ASSIGN_OR_RETURN(std::string acc,
                         ExtractField(line, "balanced_accuracy"));
  record.test_balanced_accuracy = std::strtod(acc.c_str(), nullptr);
  GREEN_ASSIGN_OR_RETURN(std::string exec_s,
                         ExtractField(line, "execution_seconds"));
  record.execution_seconds = std::strtod(exec_s.c_str(), nullptr);
  GREEN_ASSIGN_OR_RETURN(std::string exec_kwh,
                         ExtractField(line, "execution_kwh"));
  record.execution_kwh = std::strtod(exec_kwh.c_str(), nullptr);
  GREEN_ASSIGN_OR_RETURN(
      std::string infer_kwh,
      ExtractField(line, "inference_kwh_per_instance"));
  record.inference_kwh_per_instance =
      std::strtod(infer_kwh.c_str(), nullptr);
  GREEN_ASSIGN_OR_RETURN(
      std::string infer_s,
      ExtractField(line, "inference_seconds_per_instance"));
  record.inference_seconds_per_instance =
      std::strtod(infer_s.c_str(), nullptr);
  GREEN_ASSIGN_OR_RETURN(std::string pipes,
                         ExtractField(line, "num_pipelines"));
  record.num_pipelines =
      static_cast<size_t>(std::strtoul(pipes.c_str(), nullptr, 10));
  GREEN_ASSIGN_OR_RETURN(std::string evals,
                         ExtractField(line, "pipelines_evaluated"));
  record.pipelines_evaluated =
      static_cast<int>(std::strtol(evals.c_str(), nullptr, 10));
  GREEN_ASSIGN_OR_RETURN(std::string val,
                         ExtractField(line, "best_validation_score"));
  record.best_validation_score = std::strtod(val.c_str(), nullptr);
  // Taxonomy fields are optional so files written before the outcome
  // taxonomy existed still parse (as successful single-attempt cells).
  Result<std::string> outcome = ExtractField(line, "outcome");
  if (outcome.ok()) {
    GREEN_ASSIGN_OR_RETURN(record.outcome, RunOutcomeFromName(*outcome));
    GREEN_ASSIGN_OR_RETURN(record.error, ExtractField(line, "error"));
    GREEN_ASSIGN_OR_RETURN(std::string attempts,
                           ExtractField(line, "attempts"));
    record.attempts =
        static_cast<int>(std::strtol(attempts.c_str(), nullptr, 10));
  }
  // The task triple is optional: absent means a classification cell
  // (the default), where test_metric mirrors balanced accuracy.
  Result<std::string> task = ExtractField(line, "task");
  if (task.ok()) {
    GREEN_ASSIGN_OR_RETURN(record.task, ParseTaskType(*task));
    GREEN_ASSIGN_OR_RETURN(record.metric_name,
                           ExtractField(line, "metric"));
    GREEN_ASSIGN_OR_RETURN(std::string metric,
                           ExtractField(line, "test_metric"));
    record.test_metric = std::strtod(metric.c_str(), nullptr);
  } else {
    record.test_metric = record.test_balanced_accuracy;
  }
  // Variant and shard cell index are optional like the taxonomy fields.
  Result<std::string> variant = ExtractField(line, "variant");
  if (variant.ok()) record.variant = std::move(variant).value();
  Result<std::string> cell = ExtractField(line, "cell");
  if (cell.ok()) {
    record.cell_index = std::strtoll(cell->c_str(), nullptr, 10);
  }
  // The scopes array is optional (written only under --breakdown).
  // Scope paths are '/'-joined operator names, never braces, so each
  // element is delimited by the next '}'.
  const size_t scopes_pos = line.find("\"scopes\":[");
  if (scopes_pos != std::string::npos) {
    size_t cursor = scopes_pos + std::strlen("\"scopes\":[");
    while (cursor < line.size() && line[cursor] != ']') {
      const size_t open = line.find('{', cursor);
      if (open == std::string::npos) break;
      const size_t close = line.find('}', open);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated scope entry");
      }
      const std::string entry = line.substr(open, close - open + 1);
      RunScope s;
      GREEN_ASSIGN_OR_RETURN(s.path, ExtractField(entry, "path"));
      GREEN_ASSIGN_OR_RETURN(std::string kwh,
                             ExtractField(entry, "kwh"));
      s.kwh = std::strtod(kwh.c_str(), nullptr);
      GREEN_ASSIGN_OR_RETURN(std::string seconds,
                             ExtractField(entry, "seconds"));
      s.seconds = std::strtod(seconds.c_str(), nullptr);
      GREEN_ASSIGN_OR_RETURN(std::string flops,
                             ExtractField(entry, "flops"));
      s.flops = std::strtod(flops.c_str(), nullptr);
      GREEN_ASSIGN_OR_RETURN(std::string charges,
                             ExtractField(entry, "charges"));
      s.charges = std::strtoull(charges.c_str(), nullptr, 10);
      record.scopes.push_back(std::move(s));
      cursor = close + 1;
    }
  }
  return record;
}

Status WriteRecordsJsonl(const std::vector<RunRecord>& records,
                         const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  for (const RunRecord& record : records) {
    const std::string line = RecordToJson(record) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      std::fclose(f);
      return Status::IoError("short write to " + path);
    }
  }
  std::fclose(f);
  return Status::Ok();
}

Result<std::vector<RunRecord>> ReadRecordsJsonl(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[65536];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::vector<RunRecord> records;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    GREEN_ASSIGN_OR_RETURN(RunRecord record, RecordFromJson(line));
    records.push_back(std::move(record));
  }
  return records;
}

namespace {

/// RFC 4180 quoting for the free-text CSV columns (error messages can
/// contain commas and quotes).
std::string CsvQuote(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string RecordsToCsv(const std::vector<RunRecord>& records) {
  std::string out =
      "system,dataset,budget_s,repetition,balanced_accuracy,"
      "execution_seconds,execution_kwh,inference_kwh_per_instance,"
      "inference_seconds_per_instance,num_pipelines,pipelines_evaluated,"
      "best_validation_score,outcome,error,attempts\n";
  for (const RunRecord& r : records) {
    out += StrFormat(
        "%s,%s,%.6g,%d,%.10g,%.10g,%.10g,%.10g,%.10g,%zu,%d,%.10g,%s,%s,"
        "%d\n",
        CsvQuote(r.system).c_str(), CsvQuote(r.dataset).c_str(),
        r.paper_budget_seconds, r.repetition, r.test_balanced_accuracy,
        r.execution_seconds, r.execution_kwh,
        r.inference_kwh_per_instance, r.inference_seconds_per_instance,
        r.num_pipelines, r.pipelines_evaluated, r.best_validation_score,
        RunOutcomeName(r.outcome), CsvQuote(r.error).c_str(), r.attempts);
  }
  return out;
}

Status WriteRecordsCsv(const std::vector<RunRecord>& records,
                       const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const std::string text = RecordsToCsv(records);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IoError("short write");
  return Status::Ok();
}

Status AppendRecordJsonl(const RunRecord& record, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const std::string line = RecordToJson(record) + "\n";
  const size_t written = std::fwrite(line.data(), 1, line.size(), f);
  if (written != line.size()) {
    std::fclose(f);
    return Status::IoError("short write to " + path);
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IoError("flush failed for " + path);
  }
  std::fclose(f);
  return Status::Ok();
}

Status AppendJournalIncompleteMarker(size_t lost_records,
                                     const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const std::string line =
      StrFormat("{\"journal_incomplete\":%zu}\n", lost_records);
  const size_t written = std::fwrite(line.data(), 1, line.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != line.size() || !flushed) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

namespace {

/// Parses a `{"journal_incomplete":N}` marker line; npos-like nullopt
/// behavior via ok-flag: returns true and sets `count` iff the line is a
/// marker.
bool ParseIncompleteMarker(const std::string& line, size_t* count) {
  const std::string needle = "\"journal_incomplete\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *count = static_cast<size_t>(
      std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10));
  return true;
}

/// Resume's superseding rule as a standalone pass: later records replace
/// earlier ones with the same cell key, each cell keeping its
/// first-appearance position. `removed` (optional) counts superseded
/// lines.
std::vector<RunRecord> DedupeByCellKey(std::vector<RunRecord> records,
                                       size_t* removed) {
  std::map<std::string, size_t> slot;  // Cell key -> index into `kept`.
  std::vector<RunRecord> kept;
  if (removed != nullptr) *removed = 0;
  for (RunRecord& record : records) {
    const std::string key = RunRecordCellKey(record);
    auto it = slot.find(key);
    if (it == slot.end()) {
      slot.emplace(key, kept.size());
      kept.push_back(std::move(record));
    } else {
      kept[it->second] = std::move(record);
      if (removed != nullptr) ++*removed;
    }
  }
  return kept;
}

}  // namespace

Result<JournalContents> ReadJournal(const std::string& path) {
  JournalContents contents;
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return contents;  // First run.
  std::string text;
  char buf[65536];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  // Every complete append ends in '\n'; a file that does not was killed
  // mid-append. The partial tail must be DISCARDED, not parsed: a
  // truncated line can be field-complete yet wrong (a cut-off number
  // parses as a smaller number), so "it still parses" is not safe.
  std::vector<std::string> lines = Split(text, '\n');
  if (!text.empty() && text.back() != '\n' && !lines.empty()) {
    LogWarning(StrFormat(
        "journal %s: discarding partial trailing line (%zu byte(s), "
        "crash mid-append); the cell will re-run on resume",
        path.c_str(), lines.back().size()));
    lines.pop_back();
    contents.truncated_tail = true;
  }
  for (const std::string& line : lines) {
    if (Trim(line).empty()) continue;
    size_t lost = 0;
    if (ParseIncompleteMarker(line, &lost)) {
      contents.append_failures += lost;
      continue;
    }
    Result<RunRecord> record = RecordFromJson(line);
    if (!record.ok()) {
      LogWarning("journal " + path + ": skipping unparseable line (" +
                 record.status().ToString() + ")");
      continue;
    }
    contents.records.push_back(std::move(record).value());
  }
  return contents;
}

Result<std::vector<RunRecord>> ReadJournalJsonl(const std::string& path) {
  GREEN_ASSIGN_OR_RETURN(JournalContents contents, ReadJournal(path));
  return std::move(contents.records);
}

Result<size_t> CompactJournalJsonl(const std::string& path) {
  GREEN_ASSIGN_OR_RETURN(JournalContents contents, ReadJournal(path));
  size_t removed = 0;
  const std::vector<RunRecord> kept =
      DedupeByCellKey(std::move(contents.records), &removed);
  const std::string tmp = path + ".compact.tmp";
  GREEN_RETURN_IF_ERROR(WriteRecordsJsonl(kept, tmp));
  if (contents.append_failures > 0) {
    // Compaction must not launder a known-incomplete journal into a
    // clean-looking one: the marker survives, consolidated.
    GREEN_RETURN_IF_ERROR(
        AppendJournalIncompleteMarker(contents.append_failures, tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot replace " + path);
  }
  return removed;
}

Result<std::vector<RunRecord>> MergeShardRecords(
    std::vector<std::vector<RunRecord>> shards) {
  std::vector<RunRecord> merged;
  for (std::vector<RunRecord>& shard : shards) {
    // Per-shard resume cycles append superseding lines; apply the same
    // last-wins rule resume does before cross-shard checks.
    std::vector<RunRecord> deduped =
        DedupeByCellKey(std::move(shard), nullptr);
    for (RunRecord& record : deduped) {
      if (record.cell_index < 0) {
        return Status::InvalidArgument(
            "record without a cell index (" + RunRecordCellKey(record) +
            "): not a sharded-sweep journal");
      }
      merged.push_back(std::move(record));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const RunRecord& a, const RunRecord& b) {
              return a.cell_index < b.cell_index;
            });
  for (size_t i = 0; i < merged.size(); ++i) {
    const int64_t index = merged[i].cell_index;
    if (index != static_cast<int64_t>(i)) {
      return Status::InvalidArgument(StrFormat(
          index > static_cast<int64_t>(i)
              ? "shard journals are incomplete: cell %zu missing "
                "(did every shard finish, and is every shard present?)"
              : "duplicate cell %zu across shard journals "
                "(same shard passed twice, or shards ran with "
                "mismatched --shard specs)",
          i));
    }
    // Strip the shard-only index: the merged stream must be
    // byte-identical to an unsharded sweep's records.
    merged[i].cell_index = -1;
  }
  return merged;
}

Result<size_t> MergeShardJournals(const std::vector<std::string>& shard_paths,
                                  const std::string& out_path) {
  if (shard_paths.empty()) {
    return Status::InvalidArgument("no shard journals to merge");
  }
  std::vector<std::vector<RunRecord>> shards;
  for (const std::string& path : shard_paths) {
    GREEN_ASSIGN_OR_RETURN(JournalContents contents, ReadJournal(path));
    if (contents.append_failures > 0) {
      return Status::FailedPrecondition(StrFormat(
          "journal %s is marked incomplete (%zu lost append(s)); re-run "
          "that shard with --resume before merging",
          path.c_str(), contents.append_failures));
    }
    if (contents.records.empty()) {
      return Status::InvalidArgument("journal " + path +
                                     " is empty or missing");
    }
    shards.push_back(std::move(contents.records));
  }
  GREEN_ASSIGN_OR_RETURN(std::vector<RunRecord> merged,
                         MergeShardRecords(std::move(shards)));
  GREEN_RETURN_IF_ERROR(WriteRecordsJsonl(merged, out_path));
  return merged.size();
}

}  // namespace green
