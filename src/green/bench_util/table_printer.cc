#include "green/bench_util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace green {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t j = 0; j < headers_.size(); ++j) {
    widths[j] = headers_[j].size();
  }
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t j = 0; j < headers_.size(); ++j) {
      const std::string& cell = j < row.size() ? row[j] : "";
      line += " " + cell + std::string(widths[j] - cell.size(), ' ') +
              " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t j = 0; j < headers_.size(); ++j) {
    sep += std::string(widths[j] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const {
  std::fputs(Render().c_str(), stdout);
}

void PrintBanner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace green
