#ifndef GREEN_BENCH_UTIL_TABLE_PRINTER_H_
#define GREEN_BENCH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace green {

/// Fixed-width ASCII table renderer for bench output, so every bench
/// binary prints the same rows/series shape as the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header separator; columns sized to content.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner, e.g. "=== Figure 3: ... ===".
void PrintBanner(const std::string& title);

}  // namespace green

#endif  // GREEN_BENCH_UTIL_TABLE_PRINTER_H_
