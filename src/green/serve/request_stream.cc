#include "green/serve/request_stream.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "green/common/rng.h"
#include "green/common/stringutil.h"

namespace green {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Bursts repeat this many times across the trace; each period opens with
/// the spiked window so the very first seconds already stress admission.
constexpr int kBurstPeriods = 4;

double InstantRate(const TraceSpec& spec, double t) {
  switch (spec.kind) {
    case TraceSpec::Kind::kConstant:
      return spec.rate_rps;
    case TraceSpec::Kind::kDiurnal: {
      // One compressed day: trough at t=0, peak mid-trace. The 0.75
      // amplitude keeps the trough strictly positive so inter-arrival
      // sampling never divides by zero.
      const double phase =
          0.5 * (1.0 - std::cos(2.0 * kPi * t / spec.duration_seconds));
      return spec.rate_rps * (0.25 + 1.5 * phase);
    }
    case TraceSpec::Kind::kBurst: {
      const double period = spec.duration_seconds / kBurstPeriods;
      const double offset = std::fmod(t, period);
      const double burst_rate = spec.burst_rate_rps > 0.0
                                    ? spec.burst_rate_rps
                                    : 10.0 * spec.rate_rps;
      return offset < spec.burst_fraction * period ? burst_rate
                                                   : spec.rate_rps;
    }
  }
  return spec.rate_rps;
}

}  // namespace

const char* TraceKindName(TraceSpec::Kind kind) {
  switch (kind) {
    case TraceSpec::Kind::kConstant:
      return "constant";
    case TraceSpec::Kind::kDiurnal:
      return "diurnal";
    case TraceSpec::Kind::kBurst:
      return "burst";
  }
  return "?";
}

Result<TraceSpec::Kind> TraceKindFromName(const std::string& name) {
  if (name == "constant") return TraceSpec::Kind::kConstant;
  if (name == "diurnal") return TraceSpec::Kind::kDiurnal;
  if (name == "burst") return TraceSpec::Kind::kBurst;
  return Status::InvalidArgument("unknown trace kind '" + name +
                                 "' (want constant|diurnal|burst)");
}

std::vector<ServeRequest> GenerateTrace(const TraceSpec& spec,
                                        size_t num_rows) {
  std::vector<ServeRequest> out;
  if (num_rows == 0 || spec.duration_seconds <= 0.0 ||
      spec.rate_rps <= 0.0) {
    return out;
  }
  Rng rng(spec.seed);
  double t = 0.0;
  while (true) {
    // Nonhomogeneous Poisson via per-step rate evaluation: the gap is
    // exponential at the instantaneous rate where the previous arrival
    // landed. Adequate for profiles that vary slowly relative to 1/rate.
    const double rate = std::max(InstantRate(spec, t), 1e-9);
    const double u = rng.NextDouble();
    t += -std::log1p(-u) / rate;
    if (t >= spec.duration_seconds) break;
    ServeRequest request;
    request.arrival_seconds = t;
    request.row = static_cast<size_t>(rng.NextBounded(num_rows));
    out.push_back(request);
  }
  return out;
}

Result<std::vector<ServeRequest>> LoadTraceCsv(const std::string& path,
                                               size_t num_rows) {
  if (num_rows == 0) {
    return Status::InvalidArgument("trace: served dataset has no rows");
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("trace: cannot open '" + path + "'");
  }
  std::vector<ServeRequest> out;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const char* begin = trimmed.c_str();
    char* end = nullptr;
    errno = 0;
    const double arrival = std::strtod(begin, &end);
    if (end == begin || errno == ERANGE || !(arrival >= 0.0)) {
      return Status::InvalidArgument(
          StrFormat("trace: bad arrival time at %s:%zu", path.c_str(),
                    line_number));
    }
    ServeRequest request;
    request.arrival_seconds = arrival;
    request.row = out.size() % num_rows;
    while (*end == ' ' || *end == '\t') ++end;
    if (*end == ',') {
      const char* row_begin = end + 1;
      errno = 0;
      const long long row = std::strtoll(row_begin, &end, 10);
      if (end == row_begin || errno == ERANGE || row < 0) {
        return Status::InvalidArgument(
            StrFormat("trace: bad row index at %s:%zu", path.c_str(),
                      line_number));
      }
      request.row = static_cast<size_t>(row) % num_rows;
    }
    while (*end == ' ' || *end == '\t') ++end;
    if (*end != '\0') {
      return Status::InvalidArgument(
          StrFormat("trace: trailing characters at %s:%zu", path.c_str(),
                    line_number));
    }
    out.push_back(request);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ServeRequest& a, const ServeRequest& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  return out;
}

}  // namespace green
