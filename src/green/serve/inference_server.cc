#include "green/serve/inference_server.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "green/common/mathutil.h"
#include "green/common/stringutil.h"
#include "green/sim/execution_context.h"
#include "green/sim/virtual_clock.h"

namespace green {

namespace {

/// Bookkeeping work per admitted request / per dispatched batch member.
/// Tiny on purpose: admission control must stay cheap relative to
/// inference or shedding would cost more than serving.
constexpr double kAdmitFlops = 64.0;
constexpr double kDispatchFlopsPerRequest = 128.0;

/// A serve.batch fault is treated as transient infrastructure trouble:
/// the dispatch retries after a short virtual backoff, and only fails the
/// batch once the retries are exhausted.
constexpr int kMaxBatchRetries = 2;
constexpr double kBatchRetryBackoffSeconds = 0.001;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One Replay's worth of mutable state; keeps the event loop readable.
struct ReplayEngine {
  ReplayEngine(const ArtifactLadder& ladder, const Dataset& data,
               const EnergyModel* model, const ServePolicy& policy,
               const FaultInjector* faults, int cores,
               const std::vector<ServeRequest>& trace)
      : ladder(ladder),
        data(data),
        policy(policy),
        faults(faults),
        trace(trace),
        ctx(&clock, model, cores),
        meter(model) {}

  const ArtifactLadder& ladder;
  const Dataset& data;
  const ServePolicy& policy;
  const FaultInjector* faults;
  const std::vector<ServeRequest>& trace;

  VirtualClock clock;
  ExecutionContext ctx;
  EnergyMeter meter;
  ServeReport report;
  std::deque<size_t> queue;
  size_t next = 0;  ///< Next trace entry to ingest.

  void Run();
  void IngestDue();
  void Admit(size_t index);
  void ServeBatch(const std::vector<size_t>& batch);

  /// True when `index`'s deadline has already passed under the strict
  /// policy; such requests are expired lazily at batch formation instead
  /// of wasting predict work. The degrade policy keeps them: the ladder
  /// will still produce a (possibly degraded) answer.
  bool ExpiredInQueue(size_t index) const {
    return policy.deadline_seconds > 0.0 &&
           policy.on_deadline == ServePolicy::DeadlineAction::kFail &&
           trace[index].arrival_seconds + policy.deadline_seconds <=
               clock.Now();
  }

  void Count(RequestOutcome outcome) {
    switch (outcome) {
      case RequestOutcome::kCompleted:
        ++report.completed;
        break;
      case RequestOutcome::kDegraded:
        ++report.degraded;
        break;
      case RequestOutcome::kRejected:
        ++report.rejected;
        break;
      case RequestOutcome::kDeadlineExceeded:
        ++report.deadline_exceeded;
        break;
    }
  }

  /// Terminal outcome for a request that never reached a batch.
  void FinishUnserved(size_t index, RequestOutcome outcome,
                      std::string error) {
    RequestResult& r = report.results[index];
    r.outcome = outcome;
    r.finish_seconds = clock.Now();
    r.latency_seconds = clock.Now() - r.arrival_seconds;
    r.error = std::move(error);
    if (outcome == RequestOutcome::kRejected) ++report.rejected_unserved;
    Count(outcome);
  }

  /// Uniform terminal outcome for a whole failed batch; splits the
  /// dynamic energy spent since `joules_before` evenly across members.
  void FailBatch(const std::vector<size_t>& batch, double joules_before,
                 RequestOutcome outcome, const std::string& error) {
    const double share = (meter.dynamic_joules() - joules_before) /
                         static_cast<double>(batch.size());
    for (size_t index : batch) {
      RequestResult& r = report.results[index];
      r.joules += share;
      r.outcome = outcome;
      r.finish_seconds = clock.Now();
      r.latency_seconds = clock.Now() - r.arrival_seconds;
      r.error = error;
      Count(outcome);
    }
  }
};

void ReplayEngine::Admit(size_t index) {
  const ServeRequest& request = trace[index];
  RequestResult& r = report.results[index];
  r.request_index = index;
  r.arrival_seconds = request.arrival_seconds;
  ++report.arrived;
  const double joules_before = meter.dynamic_joules();
  {
    ChargeScope admit_scope(&ctx, "admit");
    ctx.ChargeCpu(kAdmitFlops, 0.0);
  }
  r.joules += meter.dynamic_joules() - joules_before;
  if (faults != nullptr) {
    Status fault = faults->Check("serve.admit");
    if (!fault.ok()) {
      FinishUnserved(index, RequestOutcome::kRejected, fault.message());
      return;
    }
  }
  if (queue.size() >= policy.queue_capacity) {
    if (policy.shed == ServePolicy::ShedPolicy::kNewest) {
      FinishUnserved(index, RequestOutcome::kRejected, "shed: queue full");
      return;
    }
    const size_t victim = queue.front();
    queue.pop_front();
    --report.admitted;
    FinishUnserved(victim, RequestOutcome::kRejected,
                   "shed: evicted by newer arrival");
  }
  queue.push_back(index);
  ++report.admitted;
}

void ReplayEngine::IngestDue() {
  while (next < trace.size() &&
         trace[next].arrival_seconds <= clock.Now()) {
    Admit(next);
    ++next;
  }
}

void ReplayEngine::ServeBatch(const std::vector<size_t>& batch) {
  ++report.batches;
  const double joules_before = meter.dynamic_joules();

  // Dispatch bookkeeping, with transient-fault retries on serve.batch.
  {
    ChargeScope batch_scope(&ctx, "batch");
    ctx.ChargeCpu(kDispatchFlopsPerRequest * static_cast<double>(batch.size()),
                  0.0);
  }
  if (faults != nullptr) {
    int attempt = 0;
    for (;;) {
      Status fault = faults->Check("serve.batch");
      if (fault.ok()) break;
      if (attempt++ >= kMaxBatchRetries) {
        const bool timeout =
            fault.code() == Status::Code::kDeadlineExceeded;
        FailBatch(batch, joules_before,
                  timeout ? RequestOutcome::kDeadlineExceeded
                          : RequestOutcome::kRejected,
                  fault.message());
        return;
      }
      clock.Advance(kBatchRetryBackoffSeconds);
    }
  }

  // Energy-SLO tier preselection: the best tier whose probed per-row
  // cost fits the per-request budget (the cheapest tier when none does).
  // Serving at the SLO-chosen tier still counts as kCompleted — the SLO
  // *is* the requested service level.
  size_t slo_tier = 0;
  if (policy.energy_slo_joules > 0.0) {
    slo_tier = ladder.size() - 1;
    for (size_t t = 0; t < ladder.size(); ++t) {
      if (ladder.tier(t).est_joules_per_row <= policy.energy_slo_joules) {
        slo_tier = t;
        break;
      }
    }
  }

  // The batch's hard deadline is the earliest member deadline; the
  // context truncates any charge that would run past it.
  double hard_deadline = kInf;
  if (policy.deadline_seconds > 0.0) {
    for (size_t index : batch) {
      hard_deadline =
          std::min(hard_deadline,
                   trace[index].arrival_seconds + policy.deadline_seconds);
    }
  }

  // Deadline-aware preselection under the degrade policy: fall to the
  // first tier whose probed cost is expected to land before the batch
  // deadline, so requests degrade proactively instead of burning the
  // expensive tier's energy only to finish late. Requests served below
  // slo_tier count as kDegraded. (Charge-slice truncation still backstops
  // a probe that underestimates.)
  size_t start_tier = slo_tier;
  if (hard_deadline < kInf &&
      policy.on_deadline == ServePolicy::DeadlineAction::kDegrade) {
    while (start_tier + 1 < ladder.size() &&
           clock.Now() +
                   ladder.tier(start_tier).est_seconds_per_row *
                       static_cast<double>(batch.size()) >
               hard_deadline) {
      ++start_tier;
    }
  }

  std::vector<size_t> rows;
  rows.reserve(batch.size());
  for (size_t index : batch) {
    rows.push_back(trace[index].row % data.num_rows());
  }
  const Dataset batch_data = data.Subset(rows);

  std::string last_error;
  bool last_timeout = false;
  for (size_t t = start_tier; t < ladder.size(); ++t) {
    const ArtifactTier& tier = ladder.tier(t);
    const bool has_cheaper = t + 1 < ladder.size();
    if (faults != nullptr) {
      Status fault = faults->Check("serve.predict");
      if (!fault.ok()) {
        last_error = fault.message();
        last_timeout = fault.code() == Status::Code::kDeadlineExceeded;
        // Injected timeouts obey the deadline policy; other injected
        // faults always fall down the ladder while a rung remains.
        if (has_cheaper &&
            (!last_timeout ||
             policy.on_deadline == ServePolicy::DeadlineAction::kDegrade)) {
          continue;
        }
        break;
      }
    }
    if (hard_deadline < kInf) {
      ctx.SetDeadline(hard_deadline);
      ctx.SetHardDeadline(true);
    }
    Result<ProbaMatrix> proba = [&]() -> Result<ProbaMatrix> {
      ChargeScope predict_scope(&ctx, "predict");
      ChargeScope tier_scope(&ctx, tier.name);
      return tier.PredictProba(batch_data, &ctx);
    }();
    ctx.ClearDeadline();
    ctx.SetHardDeadline(false);
    const bool truncated = ctx.charge_truncated();
    // Re-arm: the per-request deadline is batch-local, the server lives on.
    if (truncated) ctx.ClearChargeTruncation();

    if (proba.ok() && !truncated) {
      const double share = (meter.dynamic_joules() - joules_before) /
                           static_cast<double>(batch.size());
      for (size_t k = 0; k < batch.size(); ++k) {
        RequestResult& r = report.results[batch[k]];
        r.joules += share;
        r.finish_seconds = clock.Now();
        r.latency_seconds = clock.Now() - r.arrival_seconds;
        RequestOutcome outcome = t == slo_tier
                                     ? RequestOutcome::kCompleted
                                     : RequestOutcome::kDegraded;
        // Strict policy: an answer that lands after the request's own
        // deadline is discarded even when the charge fit its slices.
        if (policy.on_deadline == ServePolicy::DeadlineAction::kFail &&
            policy.deadline_seconds > 0.0 &&
            r.latency_seconds > policy.deadline_seconds) {
          outcome = RequestOutcome::kDeadlineExceeded;
          r.error = "answer landed after deadline";
        } else {
          r.predicted_class = static_cast<int>(ArgMax((*proba)[k]));
          r.tier = tier.name;
        }
        r.outcome = outcome;
        Count(outcome);
      }
      return;
    }

    last_timeout =
        !proba.ok()
            ? proba.status().code() == Status::Code::kDeadlineExceeded
            : true;
    last_error = proba.ok() ? std::string("predict truncated by deadline")
                            : proba.status().message();
    if (has_cheaper &&
        (!last_timeout ||
         policy.on_deadline == ServePolicy::DeadlineAction::kDegrade)) {
      continue;
    }
    break;
  }
  FailBatch(batch, joules_before,
            last_timeout ? RequestOutcome::kDeadlineExceeded
                         : RequestOutcome::kRejected,
            last_error);
}

void ReplayEngine::Run() {
  meter.Start(clock.Now());
  ctx.SetMeter(&meter);
  report.results.resize(trace.size());
  {
    ChargeScope serve_scope(&ctx, "serve");
    // One deterministic decision scope for the whole replay: @p fault
    // draws depend only on (seed, site, ordinal), never on host state.
    FaultScope fault_scope("serve");
    while (next < trace.size() || !queue.empty()) {
      if (queue.empty()) {
        clock.AdvanceTo(trace[next].arrival_seconds);
        IngestDue();
        if (queue.empty()) continue;  // Everything at this instant shed.
      }
      IngestDue();

      // Adaptive micro-batching: drain ready requests, then wait up to
      // batch_delay (virtual) for company before dispatching.
      std::vector<size_t> batch;
      const double batch_open = clock.Now();
      // Waiting for company must never push a member past its own
      // deadline: the wait window closes at the earliest member deadline.
      double wait_until = kInf;
      while (batch.size() < policy.max_batch) {
        while (batch.size() < policy.max_batch && !queue.empty()) {
          const size_t index = queue.front();
          queue.pop_front();
          if (ExpiredInQueue(index)) {
            FinishUnserved(index, RequestOutcome::kDeadlineExceeded,
                           "deadline expired in queue");
          } else {
            batch.push_back(index);
            if (policy.deadline_seconds > 0.0) {
              wait_until = std::min(
                  wait_until, trace[index].arrival_seconds +
                                  policy.deadline_seconds);
            }
          }
        }
        if (batch.size() >= policy.max_batch || next >= trace.size()) break;
        const double next_arrival = trace[next].arrival_seconds;
        if (!batch.empty() &&
            (next_arrival > batch_open + policy.batch_delay_seconds ||
             next_arrival > wait_until)) {
          break;  // Delay budget spent (or a deadline looms); dispatch.
        }
        clock.AdvanceTo(next_arrival);
        IngestDue();
      }
      if (batch.empty()) continue;
      ServeBatch(batch);
    }
  }
  report.duration_seconds = clock.Now();
  report.total_joules = meter.dynamic_joules();
  report.reading = meter.Stop(clock.Now());
}

}  // namespace

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kCompleted:
      return "completed";
    case RequestOutcome::kDegraded:
      return "degraded";
    case RequestOutcome::kRejected:
      return "rejected";
    case RequestOutcome::kDeadlineExceeded:
      return "deadline";
  }
  return "?";
}

double ServeReport::LatencyPercentile(double p) const {
  std::vector<double> latencies;
  latencies.reserve(results.size());
  for (const RequestResult& r : results) {
    if (r.answered()) latencies.push_back(r.latency_seconds);
  }
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const double rank = std::ceil(p * static_cast<double>(latencies.size()));
  const size_t index = static_cast<size_t>(
      std::clamp(rank - 1.0, 0.0,
                 static_cast<double>(latencies.size()) - 1.0));
  return latencies[index];
}

double ServeReport::JoulesPerRequest() const {
  if (arrived == 0) return 0.0;
  return total_joules / static_cast<double>(arrived);
}

Status ServeReport::CheckConservation() const {
  if (results.size() != arrived) {
    return Status::Internal(
        StrFormat("serve: %zu results for %zu arrivals", results.size(),
                  arrived));
  }
  size_t completed_count = 0;
  size_t degraded_count = 0;
  size_t rejected_count = 0;
  size_t deadline_count = 0;
  double joules_sum = 0.0;
  for (const RequestResult& r : results) {
    if (r.finish_seconds + 1e-12 < r.arrival_seconds) {
      return Status::Internal(
          StrFormat("serve: request %zu finished before it arrived",
                    r.request_index));
    }
    joules_sum += r.joules;
    switch (r.outcome) {
      case RequestOutcome::kCompleted:
        ++completed_count;
        break;
      case RequestOutcome::kDegraded:
        ++degraded_count;
        break;
      case RequestOutcome::kRejected:
        ++rejected_count;
        break;
      case RequestOutcome::kDeadlineExceeded:
        ++deadline_count;
        break;
    }
  }
  if (completed_count != completed || degraded_count != degraded ||
      rejected_count != rejected || deadline_count != deadline_exceeded) {
    return Status::Internal("serve: outcome tallies disagree with results");
  }
  if (arrived !=
      completed + degraded + rejected + deadline_exceeded) {
    return Status::Internal(StrFormat(
        "serve: %zu arrivals but %zu terminal outcomes", arrived,
        completed + degraded + rejected + deadline_exceeded));
  }
  if (admitted != arrived - rejected_unserved) {
    return Status::Internal(StrFormat(
        "serve: admitted %zu != arrived %zu - unserved rejects %zu",
        admitted, arrived, rejected_unserved));
  }
  const double tolerance = 1e-9 + 1e-6 * std::max(total_joules, 1.0);
  if (std::fabs(joules_sum - total_joules) > tolerance) {
    return Status::Internal(
        StrFormat("serve: per-request joules %.12g != metered %.12g",
                  joules_sum, total_joules));
  }
  return Status::Ok();
}

InferenceServer::InferenceServer(ArtifactLadder ladder, Dataset data,
                                 const EnergyModel* model,
                                 const ServePolicy& policy,
                                 const FaultInjector* faults, int cores)
    : ladder_(std::move(ladder)),
      data_(std::move(data)),
      model_(model),
      policy_(policy),
      faults_(faults),
      cores_(cores) {}

Result<ServeReport> InferenceServer::Replay(
    const std::vector<ServeRequest>& trace) const {
  if (ladder_.size() == 0) {
    return Status::FailedPrecondition("serve: empty artifact ladder");
  }
  if (data_.num_rows() == 0) {
    return Status::FailedPrecondition("serve: no feature rows to serve");
  }
  for (size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].arrival_seconds < trace[i - 1].arrival_seconds) {
      return Status::InvalidArgument(
          "serve: trace must be sorted by arrival time");
    }
  }
  ReplayEngine engine(ladder_, data_, model_, policy_, faults_, cores_,
                      trace);
  engine.Run();
  return std::move(engine.report);
}

}  // namespace green
