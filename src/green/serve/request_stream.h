#ifndef GREEN_SERVE_REQUEST_STREAM_H_
#define GREEN_SERVE_REQUEST_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "green/common/status.h"

namespace green {

/// One inference request in an open-loop arrival stream: the client sends
/// at `arrival_seconds` (virtual time) regardless of how the server is
/// doing — exactly the regime where overload, shedding, and deadline
/// machinery matter. `row` indexes the served dataset's feature rows.
struct ServeRequest {
  double arrival_seconds = 0.0;
  size_t row = 0;
};

/// Shape of a synthetic arrival trace. All three kinds draw Poisson
/// arrivals whose instantaneous rate follows the named profile, so the
/// stream is bursty at small timescales even when the rate is flat.
struct TraceSpec {
  enum class Kind {
    kConstant = 0,  ///< Flat rate_rps for the whole duration.
    kDiurnal = 1,   ///< One sinusoidal "day": rate in [0.25, 1.75] x mean.
    kBurst = 2,     ///< Base rate with periodic spikes at burst_rate_rps.
  };

  Kind kind = Kind::kConstant;
  double duration_seconds = 60.0;
  double rate_rps = 10.0;        ///< Mean arrival rate (requests/second).
  double burst_rate_rps = 0.0;   ///< Spike rate; <= 0 means 10 x rate_rps.
  double burst_fraction = 0.1;   ///< Fraction of each burst period spiked.
  uint64_t seed = 42;
};

const char* TraceKindName(TraceSpec::Kind kind);
Result<TraceSpec::Kind> TraceKindFromName(const std::string& name);

/// Deterministic synthetic trace: arrivals sorted by time, rows drawn
/// uniformly from [0, num_rows). Same spec + seed => identical trace.
std::vector<ServeRequest> GenerateTrace(const TraceSpec& spec,
                                        size_t num_rows);

/// Loads a trace from CSV: one request per line, `arrival_seconds[,row]`.
/// Lines starting with '#' are comments. Rows are reduced modulo
/// `num_rows`; when the column is absent the line index is used. The
/// result is sorted by arrival time.
Result<std::vector<ServeRequest>> LoadTraceCsv(const std::string& path,
                                               size_t num_rows);

}  // namespace green

#endif  // GREEN_SERVE_REQUEST_STREAM_H_
