#include "green/serve/artifact_ladder.h"

#include <algorithm>
#include <utility>

#include "green/energy/energy_meter.h"
#include "green/sim/execution_context.h"
#include "green/sim/virtual_clock.h"

namespace green {

namespace {

/// Measures a tier's per-row predict cost on a throwaway clock/meter.
Status ProbeTier(const Dataset& probe, const EnergyModel* model,
                 ArtifactTier* tier) {
  VirtualClock clock;
  ExecutionContext ctx(&clock, model, /*cores=*/1);
  EnergyMeter meter(model);
  meter.Start(clock.Now());
  ctx.SetMeter(&meter);
  Result<ProbaMatrix> proba = tier->PredictProba(probe, &ctx);
  if (!proba.ok()) return proba.status();
  const double rows = static_cast<double>(probe.num_rows());
  tier->est_seconds_per_row = clock.Now() / rows;
  tier->est_joules_per_row = meter.dynamic_joules() / rows;
  meter.Stop(clock.Now());
  return Status::Ok();
}

}  // namespace

Result<ProbaMatrix> ArtifactTier::PredictProba(const Dataset& batch,
                                               ExecutionContext* ctx) const {
  if (!IsConstant()) return artifact.PredictProba(batch, ctx);
  // Constant class-prior answer: one lookup's worth of work per row.
  ProbaMatrix out(batch.num_rows());
  for (auto& row : out) row = constant_proba;
  ctx->ChargeCpu(static_cast<double>(batch.num_rows()) *
                     static_cast<double>(constant_proba.size()),
                 0.0);
  return out;
}

Result<ArtifactLadder> ArtifactLadder::Build(const FittedArtifact& artifact,
                                             const Dataset& train,
                                             const EnergyModel* model,
                                             size_t probe_rows) {
  if (artifact.empty()) {
    return Status::FailedPrecondition("ladder: artifact is empty");
  }
  if (train.num_rows() == 0) {
    return Status::FailedPrecondition("ladder: train set is empty");
  }
  ArtifactLadder ladder;

  ArtifactTier full;
  full.name = "full";
  full.artifact = artifact;
  ladder.tiers_.push_back(std::move(full));

  if (artifact.NumPipelines() > 1) {
    ArtifactTier single;
    single.name = "single";
    GREEN_ASSIGN_OR_RETURN(single.artifact, artifact.DistillBestSingle());
    ladder.tiers_.push_back(std::move(single));
  }

  ArtifactTier constant;
  constant.name = "constant";
  if (train.task() == TaskType::kRegression) {
    // Regression's zero-information answer is the training target mean
    // (the analogue of the class prior below).
    constant.constant_proba.assign(1, train.TargetMean());
  } else {
    const std::vector<int> counts = train.ClassCounts();
    constant.constant_proba.assign(counts.size(), 0.0);
    for (size_t c = 0; c < counts.size(); ++c) {
      constant.constant_proba[c] = static_cast<double>(counts[c]) /
                                   static_cast<double>(train.num_rows());
    }
  }
  ladder.tiers_.push_back(std::move(constant));

  std::vector<size_t> rows(
      std::max<size_t>(1, std::min(probe_rows, train.num_rows())));
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const Dataset probe = train.Subset(rows);
  for (ArtifactTier& tier : ladder.tiers_) {
    GREEN_RETURN_IF_ERROR(ProbeTier(probe, model, &tier));
  }
  return ladder;
}

}  // namespace green
