#ifndef GREEN_SERVE_ARTIFACT_LADDER_H_
#define GREEN_SERVE_ARTIFACT_LADDER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "green/automl/fitted_artifact.h"
#include "green/energy/energy_model.h"
#include "green/table/dataset.h"

namespace green {

/// One rung of the degrade ladder: either a FittedArtifact or (last rung
/// only) a constant class-prior predictor that costs next to nothing and
/// can never miss a deadline — its one tiny charge always fits in a
/// single slice, which is what guarantees the degrade loop terminates.
struct ArtifactTier {
  std::string name;
  FittedArtifact artifact;             ///< Empty for the constant tier.
  std::vector<double> constant_proba;  ///< Class priors; constant tier only.
  /// Probed per-row inference cost, measured off-ledger on a scratch
  /// context at build time. The serving layer uses these to preselect the
  /// best tier that satisfies a per-request energy SLO.
  double est_seconds_per_row = 0.0;
  double est_joules_per_row = 0.0;

  bool IsConstant() const { return !constant_proba.empty(); }

  /// Predicts class probabilities for `batch`, charging `ctx` like any
  /// instrumented kernel. Artifact tiers can be truncated mid-predict by
  /// a hard deadline (DEADLINE_EXCEEDED); the constant tier cannot.
  Result<ProbaMatrix> PredictProba(const Dataset& batch,
                                   ExecutionContext* ctx) const;
};

/// The tiered registry an InferenceServer degrades through: the full
/// fitted artifact first, then its best single-pipeline distillation,
/// then a constant class-prior fallback. Cheaper rungs trade accuracy for
/// latency and Joules — the serving-side expression of the paper's
/// ensemble-vs-single inference gap (O1).
class ArtifactLadder {
 public:
  /// Builds the ladder and probes each tier's per-row cost by predicting
  /// on up to `probe_rows` rows of `train` with a scratch clock + meter
  /// (nothing lands on any caller-visible ledger). The single tier is
  /// dropped when the artifact already is one pipeline.
  static Result<ArtifactLadder> Build(const FittedArtifact& artifact,
                                      const Dataset& train,
                                      const EnergyModel* model,
                                      size_t probe_rows = 16);

  const std::vector<ArtifactTier>& tiers() const { return tiers_; }
  size_t size() const { return tiers_.size(); }
  const ArtifactTier& tier(size_t i) const { return tiers_[i]; }

 private:
  std::vector<ArtifactTier> tiers_;
};

}  // namespace green

#endif  // GREEN_SERVE_ARTIFACT_LADDER_H_
