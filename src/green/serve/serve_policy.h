#ifndef GREEN_SERVE_SERVE_POLICY_H_
#define GREEN_SERVE_SERVE_POLICY_H_

#include <cstddef>
#include <string>

#include "green/common/status.h"

namespace green {

/// Knobs governing how an InferenceServer trades latency, energy, and
/// answer quality under load. Every field has a GREEN_SERVE_* environment
/// override (lenient: malformed values fall back to the default,
/// out-of-range values clamp — a serving process should never fail to
/// start because of a fat-fingered knob).
struct ServePolicy {
  /// What happens when a request's deadline fires mid-predict (or, under
  /// kFail, when an answer would land after the deadline anyway).
  enum class DeadlineAction {
    kFail = 0,     ///< Strict SLO: the request fails DEADLINE_EXCEEDED.
    kDegrade = 1,  ///< Answer anyway, from the next cheaper ladder tier.
  };
  /// Which request is shed when the admission queue is full.
  enum class ShedPolicy {
    kNewest = 0,  ///< Reject the incoming request (tail drop).
    kOldest = 1,  ///< Evict the head of the queue, admit the newcomer.
  };

  /// Admission queue bound (requests). GREEN_SERVE_QUEUE, clamped to
  /// [1, 1048576].
  size_t queue_capacity = 64;
  /// Micro-batch size cap. GREEN_SERVE_BATCH, clamped to [1, 4096].
  size_t max_batch = 8;
  /// How long a freshly opened batch waits for more arrivals (virtual
  /// seconds). GREEN_SERVE_BATCH_DELAY_MS, clamped to [0, 60000] ms.
  double batch_delay_seconds = 0.005;
  /// Per-request deadline measured from arrival (virtual seconds);
  /// 0 disables deadlines. GREEN_SERVE_DEADLINE_MS, clamped to
  /// [0, 3600000] ms.
  double deadline_seconds = 0.0;
  /// Per-request dynamic-energy SLO (Joules); 0 disables it. When set,
  /// the server preselects the best ladder tier whose probed
  /// Joules-per-row fits the SLO. GREEN_SERVE_ENERGY_SLO_J, clamped to
  /// [0, 1e12].
  double energy_slo_joules = 0.0;
  /// GREEN_SERVE_POLICY: "fail" | "degrade".
  DeadlineAction on_deadline = DeadlineAction::kFail;
  /// GREEN_SERVE_SHED: "newest" | "oldest".
  ShedPolicy shed = ShedPolicy::kNewest;
};

const char* DeadlineActionName(ServePolicy::DeadlineAction action);
Result<ServePolicy::DeadlineAction> DeadlineActionFromName(
    const std::string& name);

const char* ShedPolicyName(ServePolicy::ShedPolicy shed);
Result<ServePolicy::ShedPolicy> ShedPolicyFromName(const std::string& name);

/// Defaults overridden by the GREEN_SERVE_* environment variables.
ServePolicy ServePolicyFromEnv();

}  // namespace green

#endif  // GREEN_SERVE_SERVE_POLICY_H_
