#include "green/serve/serve_policy.h"

#include <algorithm>
#include <cstdlib>

#include "green/common/logging.h"

namespace green {

namespace {

/// Integer env knob: missing/malformed -> fallback, out-of-range -> clamp.
/// Clamping happens on the wide type before any narrowing, so
/// "99999999999999999999" saturates strtol at LONG_MAX and lands on `hi`
/// instead of overflowing.
long LongFromEnv(const char* name, long fallback, long lo, long hi) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    LogWarning(std::string(name) + ": ignoring malformed value '" + value +
               "'");
    return fallback;
  }
  return std::clamp(parsed, lo, hi);
}

double DoubleFromEnv(const char* name, double fallback, double lo,
                     double hi) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || parsed != parsed) {
    LogWarning(std::string(name) + ": ignoring malformed value '" + value +
               "'");
    return fallback;
  }
  return std::clamp(parsed, lo, hi);
}

}  // namespace

const char* DeadlineActionName(ServePolicy::DeadlineAction action) {
  switch (action) {
    case ServePolicy::DeadlineAction::kFail:
      return "fail";
    case ServePolicy::DeadlineAction::kDegrade:
      return "degrade";
  }
  return "?";
}

Result<ServePolicy::DeadlineAction> DeadlineActionFromName(
    const std::string& name) {
  if (name == "fail") return ServePolicy::DeadlineAction::kFail;
  if (name == "degrade") return ServePolicy::DeadlineAction::kDegrade;
  return Status::InvalidArgument("unknown deadline policy '" + name +
                                 "' (want fail|degrade)");
}

const char* ShedPolicyName(ServePolicy::ShedPolicy shed) {
  switch (shed) {
    case ServePolicy::ShedPolicy::kNewest:
      return "newest";
    case ServePolicy::ShedPolicy::kOldest:
      return "oldest";
  }
  return "?";
}

Result<ServePolicy::ShedPolicy> ShedPolicyFromName(const std::string& name) {
  if (name == "newest") return ServePolicy::ShedPolicy::kNewest;
  if (name == "oldest") return ServePolicy::ShedPolicy::kOldest;
  return Status::InvalidArgument("unknown shed policy '" + name +
                                 "' (want newest|oldest)");
}

ServePolicy ServePolicyFromEnv() {
  ServePolicy policy;
  policy.queue_capacity = static_cast<size_t>(
      LongFromEnv("GREEN_SERVE_QUEUE",
                  static_cast<long>(policy.queue_capacity), 1, 1L << 20));
  policy.max_batch = static_cast<size_t>(LongFromEnv(
      "GREEN_SERVE_BATCH", static_cast<long>(policy.max_batch), 1, 4096));
  policy.batch_delay_seconds =
      DoubleFromEnv("GREEN_SERVE_BATCH_DELAY_MS",
                    policy.batch_delay_seconds * 1e3, 0.0, 60000.0) /
      1e3;
  policy.deadline_seconds =
      DoubleFromEnv("GREEN_SERVE_DEADLINE_MS",
                    policy.deadline_seconds * 1e3, 0.0, 3600000.0) /
      1e3;
  policy.energy_slo_joules = DoubleFromEnv(
      "GREEN_SERVE_ENERGY_SLO_J", policy.energy_slo_joules, 0.0, 1e12);
  const char* action = std::getenv("GREEN_SERVE_POLICY");
  if (action != nullptr && action[0] != '\0') {
    Result<ServePolicy::DeadlineAction> parsed =
        DeadlineActionFromName(action);
    if (parsed.ok()) {
      policy.on_deadline = *parsed;
    } else {
      LogWarning("GREEN_SERVE_POLICY: " + parsed.status().ToString());
    }
  }
  const char* shed = std::getenv("GREEN_SERVE_SHED");
  if (shed != nullptr && shed[0] != '\0') {
    Result<ServePolicy::ShedPolicy> parsed = ShedPolicyFromName(shed);
    if (parsed.ok()) {
      policy.shed = *parsed;
    } else {
      LogWarning("GREEN_SERVE_SHED: " + parsed.status().ToString());
    }
  }
  return policy;
}

}  // namespace green
