#ifndef GREEN_SERVE_INFERENCE_SERVER_H_
#define GREEN_SERVE_INFERENCE_SERVER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "green/common/fault.h"
#include "green/energy/energy_meter.h"
#include "green/serve/artifact_ladder.h"
#include "green/serve/request_stream.h"
#include "green/serve/serve_policy.h"

namespace green {

/// Terminal fate of one request. Every arrival reaches exactly one of
/// these — the conservation invariant the soak test asserts under faults,
/// deadlines, and overload.
enum class RequestOutcome {
  kCompleted = 0,  ///< Answered by the initially selected tier.
  kDegraded = 1,   ///< Answered, but by a cheaper fallback tier.
  kRejected = 2,   ///< Shed at admission, or failed after retries.
  kDeadlineExceeded = 3,  ///< No answer before the deadline (kFail policy).
};

const char* RequestOutcomeName(RequestOutcome outcome);

struct RequestResult {
  size_t request_index = 0;
  RequestOutcome outcome = RequestOutcome::kRejected;
  double arrival_seconds = 0.0;
  double finish_seconds = 0.0;   ///< Virtual time of the terminal outcome.
  double latency_seconds = 0.0;  ///< finish - arrival.
  double joules = 0.0;  ///< Dynamic energy attributed to this request.
  int predicted_class = -1;  ///< >= 0 for answered requests.
  std::string tier;          ///< Ladder tier that answered (if any).
  std::string error;         ///< Failure message (if any).

  bool answered() const {
    return outcome == RequestOutcome::kCompleted ||
           outcome == RequestOutcome::kDegraded;
  }
};

/// Everything one Replay produced: per-request results, tallies, and the
/// meter reading (callers file it into a StageLedger under
/// Stage::kServing, which lands the serve/... scope subtree at
/// serving/serve/...).
struct ServeReport {
  std::vector<RequestResult> results;  ///< Indexed by request.

  size_t arrived = 0;
  size_t admitted = 0;  ///< Entered the queue and were never evicted.
  size_t completed = 0;
  size_t degraded = 0;
  size_t rejected = 0;
  size_t deadline_exceeded = 0;
  /// Subset of `rejected` that never reached a batch: shed at admission,
  /// evicted from the queue, or refused by an injected serve.admit fault.
  size_t rejected_unserved = 0;
  size_t batches = 0;

  double duration_seconds = 0.0;  ///< Virtual time the replay spanned.
  double total_joules = 0.0;      ///< Dynamic joules across the replay.
  EnergyReading reading;

  /// Nearest-rank latency percentile over answered requests, p in (0, 1].
  double LatencyPercentile(double p) const;

  /// Mean dynamic joules per arrived request.
  double JoulesPerRequest() const;

  /// Verifies the serving invariants:
  ///   * one result per arrival, finish >= arrival on each;
  ///   * arrived == completed + degraded + rejected + deadline_exceeded,
  ///     and the tallies match a recount of `results`;
  ///   * admitted == arrived - (requests rejected without service);
  ///   * sum of per-request joules == total_joules (fp tolerance).
  /// Non-OK means a request was lost or double-counted, or energy leaked
  /// past the per-request attribution.
  Status CheckConservation() const;
};

/// Discrete-event model of an online inference service on the virtual
/// clock. Requests arrive open-loop; the server admits them into a
/// bounded queue (shedding per policy when full), groups admitted
/// requests into adaptive micro-batches (waiting up to batch_delay for
/// company), and answers each batch from the artifact ladder. Per-request
/// deadlines are enforced as a hard per-batch deadline on the execution
/// context, so a too-slow predict is truncated mid-charge and either
/// fails (kFail) or retries down the ladder (kDegrade); the constant tier
/// can always answer, so degradation terminates. All work is metered
/// under a "serve" ChargeScope subtree (serve/admit, serve/batch,
/// serve/predict/<tier>), and each request is attributed its share of
/// dynamic energy.
///
/// Fault sites: serve.admit (request rejected), serve.batch (dispatch
/// retried with virtual backoff, then the batch fails), serve.predict
/// (tier attempt fails; the server falls down the ladder when the policy
/// allows, mirroring an organic deadline).
class InferenceServer {
 public:
  /// `data` holds the feature rows requests index into; `faults` may be
  /// null. The server serves replicas of one machine: `cores` is the
  /// parallelism each batch predict may assume.
  InferenceServer(ArtifactLadder ladder, Dataset data,
                  const EnergyModel* model, const ServePolicy& policy,
                  const FaultInjector* faults = nullptr, int cores = 1);

  /// Replays `trace` (sorted by arrival time) on a fresh virtual clock.
  /// Deterministic: same ladder, trace, policy, and fault spec =>
  /// identical report.
  Result<ServeReport> Replay(const std::vector<ServeRequest>& trace) const;

  const ServePolicy& policy() const { return policy_; }
  const ArtifactLadder& ladder() const { return ladder_; }

 private:
  ArtifactLadder ladder_;
  Dataset data_;
  const EnergyModel* model_;  // Not owned.
  ServePolicy policy_;
  const FaultInjector* faults_;  // Not owned; may be null.
  int cores_;
};

}  // namespace green

#endif  // GREEN_SERVE_INFERENCE_SERVER_H_
