#ifndef GREEN_COMMON_STATUS_H_
#define GREEN_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace green {

/// Error handling follows the RocksDB idiom: the library never throws;
/// fallible operations return a `Status` (or `Result<T>`, below).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kFailedPrecondition,
    kUnimplemented,
    kInternal,
    kIoError,
    kResourceExhausted,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string, "OK" for success.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Value-or-error, move-friendly. Mirrors absl::StatusOr in spirit.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {}     // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Precondition: ok(). Accessing the value of a failed Result aborts.
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK status out of the enclosing function.
#define GREEN_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::green::Status _green_st = (expr);            \
    if (!_green_st.ok()) return _green_st;         \
  } while (0)

#define GREEN_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#define GREEN_CONCAT_INNER(a, b) a##b
#define GREEN_CONCAT(a, b) GREEN_CONCAT_INNER(a, b)

/// GREEN_ASSIGN_OR_RETURN(auto x, Expr()) — assign value or propagate error.
#define GREEN_ASSIGN_OR_RETURN(lhs, rexpr) \
  GREEN_ASSIGN_OR_RETURN_IMPL(GREEN_CONCAT(_green_res_, __LINE__), lhs, rexpr)

}  // namespace green

#endif  // GREEN_COMMON_STATUS_H_
