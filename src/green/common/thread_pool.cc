#include "green/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace green {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(jobs), n));
  std::atomic<size_t> next{0};
  ThreadPool pool(workers);
  // One claiming loop per worker (not one Submit per index): workers pull
  // the next unclaimed index until the range is exhausted.
  for (int w = 0; w < workers; ++w) {
    pool.Submit([&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace green
