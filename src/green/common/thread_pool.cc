#include "green/common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace green {

namespace {

/// Identifies the pool (if any) the current thread is a worker of, so
/// Submit from inside a task targets the submitter's own deque.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  queues_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const size_t target =
      tls_pool == this
          ? tls_worker
          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Lock-then-notify (empty critical section) so a worker between its
  // failed steal scan and its wait cannot miss the wakeup: it either
  // sees pending_ > 0 in the predicate or is already waiting.
  { std::lock_guard<std::mutex> lock(mu_); }
  work_ready_.notify_one();
}

bool ThreadPool::TryTake(size_t self, std::function<void()>* task) {
  // Own deque first: bottom (back), LIFO — the most recently queued
  // task is the hottest in cache.
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal: top (front), FIFO — the oldest task in the victim's deque,
  // farthest from what the victim is about to pop.
  const size_t n = queues_.size();
  for (size_t offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0 &&
           active_.load(std::memory_order_acquire) == 0;
  });
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    std::function<void()> task;
    if (TryTake(self, &task)) {
      // Claim order matters: active_ up BEFORE pending_ down, so a
      // Wait()er never sees both counters at zero mid-claim.
      active_.fetch_add(1, std::memory_order_acq_rel);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      task();
      task = nullptr;
      if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
          pending_.load(std::memory_order_acquire) == 0) {
        std::lock_guard<std::mutex> lock(mu_);
        all_idle_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_ready_.wait(lock, [this] {
      return shutdown_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_ && pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(jobs), n));
  ThreadPool pool(workers);
  // One task per index: Submit round-robins them across the worker
  // deques, so every worker starts with its own slice and the stealing
  // path rebalances skewed index costs.
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace green
