#include "green/common/arena.h"

#include <cstdint>

namespace green {

void* Arena::Alloc(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    while (current_block_ < blocks_.size()) {
      Block& block = blocks_[current_block_];
      const uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
      const uintptr_t aligned =
          (base + offset_ + (align - 1)) & ~uintptr_t(align - 1);
      const size_t new_offset = (aligned - base) + bytes;
      if (new_offset <= block.capacity) {
        offset_ = new_offset;
        allocated_bytes_ += bytes;
        return reinterpret_cast<void*>(aligned);
      }
      // Doesn't fit; move on (skipped capacity returns on Reset/Rewind).
      ++current_block_;
      offset_ = 0;
    }
    // Blocks only ever append, so outstanding ArenaScope marks (block
    // index, offset) stay valid.
    size_t capacity = block_bytes_;
    if (capacity < bytes + align) capacity = bytes + align;
    Block block;
    block.data = std::make_unique<char[]>(capacity);
    block.capacity = capacity;
    blocks_.push_back(std::move(block));
    current_block_ = blocks_.size() - 1;
    offset_ = 0;
  }
}

void Arena::Reset() {
  current_block_ = 0;
  offset_ = 0;
  allocated_bytes_ = 0;
}

void Arena::Rewind(const Mark& mark) {
  current_block_ = mark.block;
  offset_ = mark.offset;
}

size_t Arena::reserved_bytes() const {
  size_t total = 0;
  for (const Block& block : blocks_) total += block.capacity;
  return total;
}

Arena* ScratchArena() {
  thread_local Arena arena;
  return &arena;
}

}  // namespace green
