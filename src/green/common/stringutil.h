#ifndef GREEN_COMMON_STRINGUTIL_H_
#define GREEN_COMMON_STRINGUTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace green {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed-precision human formatting, e.g. 1.2345e-05 -> "1.23e-05".
std::string FormatSci(double v, int digits = 3);

/// Thousands-separated integer formatting, e.g. 404649 -> "404,649".
std::string FormatWithCommas(int64_t v);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace green

#endif  // GREEN_COMMON_STRINGUTIL_H_
