#include "green/common/mathutil.h"

#include <algorithm>
#include <cmath>

namespace green {

void SoftmaxInPlace(std::vector<double>* v) {
  if (v->empty()) return;
  const double mx = *std::max_element(v->begin(), v->end());
  double sum = 0.0;
  for (double& x : *v) {
    x = std::exp(x - mx);
    sum += x;
  }
  if (sum <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(v->size());
    for (double& x : *v) x = uniform;
    return;
  }
  for (double& x : *v) x /= sum;
}

double LogSumExp(const std::vector<double>& v) {
  if (v.empty()) return -INFINITY;
  const double mx = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (double x : v) sum += std::exp(x - mx);
  return mx + std::log(sum);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + mid - 1, v.begin() + mid);
  return 0.5 * (v[mid - 1] + hi);
}

double Quantile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  p = Clamp(p, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double Sigmoid(double x) {
  x = Clamp(x, -40.0, 40.0);
  return 1.0 / (1.0 + std::exp(-x));
}

size_t ArgMax(const std::vector<double>& v) {
  if (v.empty()) return 0;
  return static_cast<size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double ma = 0.0;
  double mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace green
