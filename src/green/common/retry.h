#ifndef GREEN_COMMON_RETRY_H_
#define GREEN_COMMON_RETRY_H_

#include "green/common/status.h"

namespace green {

/// Retry policy for transient per-cell failures in the experiment
/// harness. Backoff is exponential with a deterministic schedule; the
/// harness advances its *virtual* clock by BackoffSeconds rather than
/// sleeping, so retries are free at wall-clock time and reproducible.
struct RetryPolicy {
  /// Total tries including the first. 1 disables retries.
  int max_attempts = 2;
  double initial_backoff_seconds = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 30.0;

  /// Backoff charged after failed attempt `attempt` (1-based):
  /// min(initial * multiplier^(attempt-1), max).
  double BackoffSeconds(int attempt) const;
};

/// Whether a failure class is worth retrying. Transient infrastructure
/// errors (INTERNAL, IO_ERROR, RESOURCE_EXHAUSTED) are; semantic
/// rejections (INVALID_ARGUMENT, UNIMPLEMENTED, ...) and deadline
/// expiries are not — a timed-out cell would only time out again.
bool IsRetryable(const Status& status);

}  // namespace green

#endif  // GREEN_COMMON_RETRY_H_
