#ifndef GREEN_COMMON_SHARD_H_
#define GREEN_COMMON_SHARD_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "green/common/status.h"

namespace green {

/// Deterministic ownership of a slice of a canonically-enumerated work
/// list, for splitting one logical sweep across N independent processes.
///
/// Cells keep their single canonical enumeration order; shard `index` of
/// `count` owns every cell whose global enumeration index is congruent to
/// `index` modulo `count` (round-robin, not contiguous blocks — the sweep
/// enumerates system-major, so contiguous slices would hand one shard all
/// of the cheapest system and another all of the most expensive one).
/// Ownership is a pure function of (cell index, shard spec): any process
/// can recompute which cells belong to which shard without coordination.
struct ShardSpec {
  int index = 0;  ///< This worker's shard, in [0, count).
  int count = 1;  ///< Total shards; 1 = unsharded.

  bool valid() const { return count >= 1 && index >= 0 && index < count; }

  /// True iff this shard owns the cell at `cell_index` in the canonical
  /// enumeration.
  bool Owns(size_t cell_index) const {
    return count <= 1 ||
           cell_index % static_cast<size_t>(count) ==
               static_cast<size_t>(index);
  }

  /// "i/n" (e.g. "0/3"), the same form ParseShardSpec accepts.
  std::string ToString() const;
};

/// Parses "i/n" with 0 <= i < n and n >= 1 (e.g. "2/4"). Rejects
/// garbage, negatives, i >= n, and trailing characters.
Result<ShardSpec> ParseShardSpec(std::string_view spec);

/// GREEN_SHARD: "i/n"; unset or unparseable (with a warning) = the
/// unsharded {0, 1}.
ShardSpec ShardFromEnv();

}  // namespace green

#endif  // GREEN_COMMON_SHARD_H_
