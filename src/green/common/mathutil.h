#ifndef GREEN_COMMON_MATHUTIL_H_
#define GREEN_COMMON_MATHUTIL_H_

#include <cstddef>
#include <vector>

namespace green {

/// Numerically stable softmax; writes the result in place.
void SoftmaxInPlace(std::vector<double>* v);

/// log(sum(exp(v))) with the max-shift trick.
double LogSumExp(const std::vector<double>& v);

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Unbiased sample standard deviation; 0 for fewer than two elements.
double StdDev(const std::vector<double>& v);

/// Median (of a copy); 0 for an empty vector.
double Median(std::vector<double> v);

/// p-quantile in [0,1] via linear interpolation (of a copy).
double Quantile(std::vector<double> v, double p);

/// Dot product; vectors must have equal length.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Squared Euclidean distance.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Sigmoid with clamping to avoid overflow.
double Sigmoid(double x);

/// Index of the maximum element; 0 for an empty vector.
size_t ArgMax(const std::vector<double>& v);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Pearson correlation of two equal-length vectors; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace green

#endif  // GREEN_COMMON_MATHUTIL_H_
