#include "green/common/fault.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "green/common/logging.h"
#include "green/common/rng.h"

namespace green {

namespace {

thread_local FaultScope* g_current_scope = nullptr;

Result<FaultKind> ParseKind(const std::string& word) {
  if (word == "fail") return FaultKind::kFail;
  if (word == "timeout") return FaultKind::kTimeout;
  if (word == "skip") return FaultKind::kSkip;
  if (word == "abort") return FaultKind::kAbort;
  return Status::InvalidArgument("unknown fault kind '" + word +
                                 "' (want fail|timeout|skip|abort)");
}

Result<FaultSpec> ParseClause(const std::string& clause) {
  FaultSpec spec;
  std::string body = clause;
  // The kind suffix is split at the last '=' so site names containing '='
  // never arise; sites are identifiers like "run.fit".
  size_t eq = body.rfind('=');
  if (eq != std::string::npos) {
    GREEN_ASSIGN_OR_RETURN(spec.kind, ParseKind(body.substr(eq + 1)));
    body = body.substr(0, eq);
  }
  size_t at = body.rfind('@');
  size_t hash = body.rfind('#');
  if (at != std::string::npos && hash != std::string::npos) {
    return Status::InvalidArgument("fault clause '" + clause +
                                   "' mixes '@' and '#'");
  }
  if (at == std::string::npos && hash == std::string::npos) {
    return Status::InvalidArgument("fault clause '" + clause +
                                   "' needs 'site@p' or 'site#n'");
  }
  size_t sep = (at != std::string::npos) ? at : hash;
  spec.site = body.substr(0, sep);
  if (spec.site.empty()) {
    return Status::InvalidArgument("fault clause '" + clause +
                                   "' has an empty site");
  }
  const std::string arg = body.substr(sep + 1);
  if (arg.empty()) {
    return Status::InvalidArgument("fault clause '" + clause +
                                   "' has an empty argument");
  }
  errno = 0;
  char* end = nullptr;
  if (at != std::string::npos) {
    double p = std::strtod(arg.c_str(), &end);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("bad probability in fault clause '" +
                                     clause + "'");
    }
    if (!(p > 0.0 && p <= 1.0)) {
      return Status::InvalidArgument("fault probability must be in (0, 1], got '" +
                                     arg + "'");
    }
    spec.probability = p;
  } else {
    long long n = std::strtoll(arg.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || errno == ERANGE || n < 1 ||
        n > 1000000000LL) {
      return Status::InvalidArgument("bad call index in fault clause '" +
                                     clause + "' (want 1..1e9)");
    }
    spec.nth = static_cast<int64_t>(n);
  }
  return spec;
}

}  // namespace

Result<std::vector<FaultSpec>> ParseFaultSpecs(const std::string& config) {
  std::vector<FaultSpec> specs;
  size_t pos = 0;
  while (pos <= config.size()) {
    size_t comma = config.find(',', pos);
    if (comma == std::string::npos) comma = config.size();
    // Trim surrounding whitespace from the clause.
    size_t begin = pos;
    size_t end = comma;
    while (begin < end && std::isspace(static_cast<unsigned char>(config[begin]))) {
      ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(config[end - 1]))) {
      --end;
    }
    if (end > begin) {
      GREEN_ASSIGN_OR_RETURN(FaultSpec spec,
                             ParseClause(config.substr(begin, end - begin)));
      specs.push_back(std::move(spec));
    }
    pos = comma + 1;
  }
  return specs;
}

Status MakeInjectedStatus(FaultKind kind, const std::string& site) {
  switch (kind) {
    case FaultKind::kFail:
      return Status::Internal("injected fault at " + site);
    case FaultKind::kTimeout:
      return Status::DeadlineExceeded("injected timeout at " + site);
    case FaultKind::kSkip:
      return Status::Unimplemented("injected skip at " + site);
    case FaultKind::kAbort:
      FatalError("injected abort at " + site);
  }
  return Status::Internal("injected fault at " + site);
}

std::string InjectedFaultSite(const std::string& message) {
  for (const char* marker :
       {"injected fault at ", "injected timeout at ", "injected skip at ",
        "injected abort at "}) {
    const size_t pos = message.find(marker);
    if (pos == std::string::npos) continue;
    std::string site = message.substr(pos + std::strlen(marker));
    // Injected statuses end at the site name; if other context was
    // appended after it (" (while ...)", "; retry ..."), cut at the
    // first character that cannot be part of a site identifier.
    const size_t end = site.find_first_not_of(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "0123456789._-");
    if (end != std::string::npos) site.resize(end);
    return site;
  }
  return std::string();
}

FaultScope::FaultScope(std::string key)
    : key_(std::move(key)), previous_(g_current_scope) {
  g_current_scope = this;
}

FaultScope::~FaultScope() { g_current_scope = previous_; }

FaultScope* FaultScope::Current() { return g_current_scope; }

FaultInjector::FaultInjector(std::vector<FaultSpec> specs, uint64_t seed)
    : seed_(seed) {
  specs_.reserve(specs.size());
  for (auto& spec : specs) {
    auto armed = std::make_unique<Armed>();
    armed->spec = std::move(spec);
    specs_.push_back(std::move(armed));
  }
}

Result<FaultInjector> FaultInjector::Parse(const std::string& config,
                                           uint64_t seed) {
  GREEN_ASSIGN_OR_RETURN(std::vector<FaultSpec> specs,
                         ParseFaultSpecs(config));
  return FaultInjector(std::move(specs), seed);
}

FaultInjector FaultInjector::Lenient(const std::string& config,
                                     uint64_t seed) {
  std::vector<FaultSpec> kept;
  size_t pos = 0;
  while (pos <= config.size()) {
    size_t comma = config.find(',', pos);
    if (comma == std::string::npos) comma = config.size();
    std::string clause = config.substr(pos, comma - pos);
    Result<std::vector<FaultSpec>> parsed = ParseFaultSpecs(clause);
    if (parsed.ok()) {
      for (auto& spec : *parsed) kept.push_back(std::move(spec));
    } else {
      LogWarning("GREEN_FAULTS: dropping clause: " +
                 parsed.status().ToString());
    }
    pos = comma + 1;
  }
  return FaultInjector(std::move(kept), seed);
}

Status FaultInjector::Check(const char* site) const {
  if (specs_.empty()) return Status::Ok();
  for (const auto& armed : specs_) {
    const FaultSpec& spec = armed->spec;
    if (spec.site != site) continue;
    if (spec.nth > 0) {
      int64_t call = armed->calls.fetch_add(1, std::memory_order_relaxed) + 1;
      if (call == spec.nth &&
          !armed->fired.exchange(true, std::memory_order_relaxed)) {
        return MakeInjectedStatus(spec.kind, spec.site);
      }
      continue;
    }
    // Probabilistic clause. When a FaultScope is active the draw is a
    // pure function of (seed, site, scope key, per-scope ordinal) —
    // identical no matter which thread runs the cell. Outside any scope,
    // fall back to a per-spec arrival counter (deterministic only under
    // sequential execution).
    uint64_t h = HashCombine(seed_, HashString(site));
    FaultScope* scope = FaultScope::Current();
    if (scope != nullptr) {
      h = HashCombine(h, HashString(scope->key().c_str()));
      h = HashCombine(h, scope->NextOrdinal());
    } else {
      int64_t call = armed->calls.fetch_add(1, std::memory_order_relaxed);
      h = HashCombine(h, static_cast<uint64_t>(call));
    }
    double u = static_cast<double>(SplitMix64(&h) >> 11) * 0x1.0p-53;
    if (u < spec.probability) {
      return MakeInjectedStatus(spec.kind, spec.site);
    }
  }
  return Status::Ok();
}

}  // namespace green
