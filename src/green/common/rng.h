#ifndef GREEN_COMMON_RNG_H_
#define GREEN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace green {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component in the library takes an explicit
/// seed so experiments are reproducible bit-for-bit across machines.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double NextGaussian();

  /// Bernoulli(p).
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; used to give each repetition /
  /// dataset / system a decorrelated stream from one master seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// SplitMix64 single step; exposed for hashing-style seed derivation.
uint64_t SplitMix64(uint64_t* state);

/// Stable 64-bit hash combiner for deriving seeds from (seed, tag) pairs.
uint64_t HashCombine(uint64_t a, uint64_t b);

/// Stable FNV-1a hash of a string, for deriving seeds from names.
uint64_t HashString(const char* s);

}  // namespace green

#endif  // GREEN_COMMON_RNG_H_
