#ifndef GREEN_COMMON_ARENA_H_
#define GREEN_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace green {

/// Bump allocator for per-trial kernel scratch (node row lists, presorted
/// feature indices, histograms, distance blocks). Allocation is a pointer
/// bump; deallocation is wholesale — either Reset() back to empty or an
/// ArenaScope rewinding to a watermark. Blocks are retained across
/// Reset/rewind, so repeated fits inside a search loop stop hitting the
/// global allocator after the first trial warms the arena up.
///
/// Trivially-destructible payloads only: the arena never runs
/// destructors. Not thread-safe — use ScratchArena() for a per-thread
/// instance.
class Arena {
 public:
  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < kMinBlockBytes ? kMinBlockBytes
                                                  : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation. `align` must be a power of two.
  void* Alloc(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Uninitialized array of a trivially-destructible T.
  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Alloc(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, keeping every block for reuse.
  void Reset();

  /// Position marker for nested scopes (see ArenaScope).
  struct Mark {
    size_t block = 0;
    size_t offset = 0;
  };
  Mark CurrentMark() const { return {current_block_, offset_}; }
  void Rewind(const Mark& mark);

  /// Bytes handed out since the last Reset (diagnostic).
  size_t allocated_bytes() const { return allocated_bytes_; }
  /// Bytes of block capacity held (diagnostic; survives Reset).
  size_t reserved_bytes() const;
  size_t block_count() const { return blocks_.size(); }

  static constexpr size_t kDefaultBlockBytes = size_t{1} << 20;
  static constexpr size_t kMinBlockBytes = 4096;

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
  };

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t current_block_ = 0;  ///< Index of the block being bumped.
  size_t offset_ = 0;         ///< Bump offset within the current block.
  size_t allocated_bytes_ = 0;
};

/// RAII watermark: everything the arena hands out during this scope's
/// lifetime is reclaimed (not destructed) when the scope closes. Scopes
/// nest — a forest-level scope can wrap per-tree scopes.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena)
      : arena_(arena), mark_(arena->CurrentMark()) {}
  ~ArenaScope() { arena_->Rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// The calling thread's scratch arena (lazily constructed, lives for the
/// thread). Sweep workers each get their own, so kernel scratch never
/// crosses threads.
Arena* ScratchArena();

}  // namespace green

#endif  // GREEN_COMMON_ARENA_H_
