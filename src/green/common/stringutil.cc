#include "green/common/stringutil.h"

#include <cstdarg>
#include <cstdio>

namespace green {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                   s[e - 1] == '\r' || s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatSci(double v, int digits) {
  return StrFormat("%.*e", digits, v);
}

std::string FormatWithCommas(int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace green
