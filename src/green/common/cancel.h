#ifndef GREEN_COMMON_CANCEL_H_
#define GREEN_COMMON_CANCEL_H_

#include <atomic>

namespace green {

/// Cooperative cancellation flag shared between a watchdog (or any other
/// supervisor) and a running cell. The supervisor calls Cancel(); the
/// workload polls cancelled() at its loop heads (via
/// ExecutionContext::Cancelled) and winds down with a DeadlineExceeded
/// status. Set-only and monotonic: once cancelled, a token stays
/// cancelled.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace green

#endif  // GREEN_COMMON_CANCEL_H_
