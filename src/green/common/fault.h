#ifndef GREEN_COMMON_FAULT_H_
#define GREEN_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "green/common/status.h"

namespace green {

/// Deterministic fault injection for exercising failure paths.
///
/// Faults are declared at named *sites* — string labels compiled into the
/// code wherever a fallible operation can be interrupted (`run.fit`,
/// `run.predict`, `askl.metastore.build`, `powercap.read`, `sweep.cell`,
/// ...). A `FaultInjector` holds a parsed spec of which sites fail, how
/// often, and with which failure kind; code on the hot path calls
/// `Check(site)` and propagates the returned Status like any organic
/// error. With an empty injector every Check is a branch on an empty
/// vector — cheap enough to leave compiled in.
///
/// Spec grammar (comma-separated clauses, e.g. GREEN_FAULTS):
///   site@p          every call at `site` fails with probability p
///   site#n          exactly the n-th call at `site` fails (1-based,
///                   single-shot — the canonical *transient* fault that a
///                   retry recovers)
///   ...=kind        optional failure kind suffix: fail (default,
///                   INTERNAL), timeout (DEADLINE_EXCEEDED), skip
///                   (UNIMPLEMENTED), abort (process abort, for crash /
///                   resume testing)
///
/// Examples: "run.fit@0.05", "run.fit#7=timeout",
///           "sweep.cell#5=abort,powercap.read@0.5".
enum class FaultKind { kFail, kTimeout, kSkip, kAbort };

struct FaultSpec {
  std::string site;
  double probability = 0.0;  ///< > 0 for `@p` clauses.
  int64_t nth = 0;           ///< > 0 for `#n` clauses.
  FaultKind kind = FaultKind::kFail;
};

/// Strict parser: any malformed clause fails the whole spec.
Result<std::vector<FaultSpec>> ParseFaultSpecs(const std::string& config);

/// The Status a firing fault produces. `kAbort` does not return: it goes
/// through FatalError ("injected abort at <site>") so crash-recovery
/// paths can be tested with death tests / subprocesses.
Status MakeInjectedStatus(FaultKind kind, const std::string& site);

/// Recovers the fault site from a message produced by
/// MakeInjectedStatus (possibly wrapped in a Status::ToString prefix or
/// other context). Empty string when the message does not carry an
/// injected-fault marker — i.e. the failure was organic. This is what
/// lets failure summaries break non-ok outcomes down per fault site.
std::string InjectedFaultSite(const std::string& message);

/// Establishes a deterministic decision scope for probabilistic faults on
/// the current thread (RAII, nestable). While a scope is active, `@p`
/// decisions are a pure function of (injector seed, site, scope key,
/// per-scope call ordinal) — independent of thread interleaving, so a
/// parallel sweep injects faults into exactly the same cells as a
/// sequential one. The experiment harness opens one scope per
/// (cell, attempt).
class FaultScope {
 public:
  explicit FaultScope(std::string key);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// The innermost scope on this thread, or nullptr.
  static FaultScope* Current();

  const std::string& key() const { return key_; }

  /// Monotonic per-scope ordinal, consumed one per probabilistic check.
  uint64_t NextOrdinal() { return ordinal_++; }

 private:
  std::string key_;
  uint64_t ordinal_ = 0;
  FaultScope* previous_;
};

/// Seeded, thread-safe fault decision engine. Decisions are
/// deterministic: `#n` counters are per-spec atomics (deterministic under
/// a single worker; under many workers the n-th *arrival* fires), and
/// `@p` draws hash the active FaultScope when one is present (fully
/// deterministic even under parallel execution).
class FaultInjector {
 public:
  /// No faults; every Check returns OK.
  FaultInjector() = default;

  FaultInjector(std::vector<FaultSpec> specs, uint64_t seed);

  /// Strict construction from a spec string.
  static Result<FaultInjector> Parse(const std::string& config,
                                     uint64_t seed);

  /// Lenient construction for environment-supplied specs: malformed
  /// clauses are dropped with a warning instead of failing startup.
  static FaultInjector Lenient(const std::string& config, uint64_t seed);

  bool empty() const { return specs_.empty(); }
  size_t size() const { return specs_.size(); }

  /// Non-OK exactly when a fault fires at `site` for this call.
  Status Check(const char* site) const;

 private:
  struct Armed {
    FaultSpec spec;
    std::atomic<int64_t> calls{0};
    std::atomic<bool> fired{false};  ///< Single-shot latch for `#n`.
  };

  // unique_ptr because Armed holds atomics (not movable).
  std::vector<std::unique_ptr<Armed>> specs_;
  uint64_t seed_ = 0;
};

}  // namespace green

#endif  // GREEN_COMMON_FAULT_H_
