#include "green/common/retry.h"

#include <algorithm>

namespace green {

double RetryPolicy::BackoffSeconds(int attempt) const {
  if (attempt < 1) attempt = 1;
  double backoff = initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= max_backoff_seconds) break;
  }
  return std::min(backoff, max_backoff_seconds);
}

bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case Status::Code::kInternal:
    case Status::Code::kIoError:
    case Status::Code::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

}  // namespace green
