#ifndef GREEN_COMMON_THREAD_POOL_H_
#define GREEN_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace green {

/// Fixed-size worker pool over per-worker work-stealing deques. Each
/// worker owns a deque: the owner pushes and pops LIFO at the bottom
/// (hot, cache-friendly, contended only with occasional thieves), while
/// an idle worker steals FIFO from the top of a victim's deque (taking
/// the oldest — and for divide-style workloads largest — task). External
/// Submit calls distribute round-robin across the deques, so a batch of
/// fine-grained tasks never serializes on one shared queue mutex the way
/// the previous single-queue pool did. The pool is the host-side
/// counterpart of the simulated TaskGraphScheduler: the scheduler models
/// parallel phases inside the virtual machine, the pool parallelizes
/// real sweep cells across real cores.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains nothing: pending tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (the library never throws).
  /// Called from a pool worker, the task lands on that worker's own
  /// deque (LIFO locality); called externally, deques are filled
  /// round-robin.
  void Submit(std::function<void()> task);

  /// Blocks until every deque is empty and every worker is idle.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks executed by a worker other than the one whose deque they were
  /// queued on, since construction. Observability for tests and the
  /// sweep log line; monotonic.
  uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultThreads();

 private:
  /// One worker's deque. back() is the bottom (owner side, LIFO),
  /// front() is the top (thief side, FIFO). A plain mutex per deque
  /// keeps the pool TSan-provable; the win over the old design is that
  /// the mutex is *per worker*, so owners almost never contend.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  /// Pops from `self`'s own deque, else steals from the others
  /// (scanning from self+1 so thieves spread across victims).
  bool TryTake(size_t self, std::function<void()>* task);

  void WorkerLoop(size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex mu_;  ///< Sleep/wake + shutdown only — never queue access.
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  /// pending_ counts queued-but-unclaimed tasks, active_ counts tasks
  /// being executed. A claim increments active_ BEFORE decrementing
  /// pending_, so (pending_ == 0 && active_ == 0) is never observed
  /// while a task exists.
  std::atomic<int> pending_{0};
  std::atomic<int> active_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<size_t> next_queue_{0};
  bool shutdown_ = false;  ///< Guarded by mu_.
};

/// Runs fn(i) for every i in [0, n) on up to `jobs` workers. Each index
/// becomes one pool task, pre-distributed round-robin across the worker
/// deques; uneven cell durations balance themselves through stealing.
/// jobs <= 1 (or n <= 1) runs inline on the calling thread —
/// byte-identical behavior to a plain loop, no threads spawned. `fn`
/// must be safe to invoke concurrently for distinct indices.
void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& fn);

}  // namespace green

#endif  // GREEN_COMMON_THREAD_POOL_H_
