#ifndef GREEN_COMMON_THREAD_POOL_H_
#define GREEN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace green {

/// Fixed-size worker pool over a shared FIFO task queue. Idle workers pull
/// the next task as soon as they finish — dynamic load balancing without
/// per-worker queues, which is all the harness needs (tasks are coarse:
/// one full AutoML run each). The pool is the host-side counterpart of the
/// simulated TaskGraphScheduler: the scheduler models parallel phases
/// inside the virtual machine, the pool parallelizes real sweep cells
/// across real cores.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains nothing: pending tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (the library never throws).
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  int active_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for every i in [0, n) on up to `jobs` workers. Indices are
/// claimed dynamically (one task per index), so uneven cell durations
/// balance themselves. jobs <= 1 (or n <= 1) runs inline on the calling
/// thread — byte-identical behavior to a plain loop, no threads spawned.
/// `fn` must be safe to invoke concurrently for distinct indices.
void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& fn);

}  // namespace green

#endif  // GREEN_COMMON_THREAD_POOL_H_
