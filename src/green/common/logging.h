#ifndef GREEN_COMMON_LOGGING_H_
#define GREEN_COMMON_LOGGING_H_

#include <string>

namespace green {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Default: Info.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes "[LEVEL] message" to stderr if `level` passes the filter.
void Log(LogLevel level, const std::string& message);

void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

/// Aborts the process with a message. Used for programming errors only
/// (violated preconditions), never for data-dependent failures.
[[noreturn]] void FatalError(const std::string& message);

/// Precondition check that survives in release builds.
#define GREEN_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::green::FatalError(std::string("CHECK failed: " #cond " at ") + \
                          __FILE__ + ":" + std::to_string(__LINE__));  \
    }                                                                  \
  } while (0)

}  // namespace green

#endif  // GREEN_COMMON_LOGGING_H_
