#include "green/common/shard.h"

#include <cstdlib>

#include "green/common/logging.h"
#include "green/common/stringutil.h"

namespace green {

std::string ShardSpec::ToString() const {
  return StrFormat("%d/%d", index, count);
}

Result<ShardSpec> ParseShardSpec(std::string_view spec) {
  const std::string trimmed(Trim(spec));
  const size_t slash = trimmed.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= trimmed.size()) {
    return Status::InvalidArgument("shard spec must be \"i/n\": " +
                                   trimmed);
  }
  char* end = nullptr;
  const std::string index_str = trimmed.substr(0, slash);
  const long index = std::strtol(index_str.c_str(), &end, 10);
  if (end == index_str.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad shard index: " + trimmed);
  }
  const std::string count_str = trimmed.substr(slash + 1);
  const long count = std::strtol(count_str.c_str(), &end, 10);
  if (end == count_str.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad shard count: " + trimmed);
  }
  if (count < 1 || count > 4096 || index < 0 || index >= count) {
    return Status::InvalidArgument(
        "shard spec needs 0 <= i < n <= 4096: " + trimmed);
  }
  ShardSpec out;
  out.index = static_cast<int>(index);
  out.count = static_cast<int>(count);
  return out;
}

ShardSpec ShardFromEnv() {
  const char* spec = std::getenv("GREEN_SHARD");
  if (spec == nullptr || spec[0] == '\0') return ShardSpec{};
  Result<ShardSpec> parsed = ParseShardSpec(spec);
  if (!parsed.ok()) {
    LogWarning("ignoring GREEN_SHARD: " + parsed.status().ToString());
    return ShardSpec{};
  }
  return *parsed;
}

}  // namespace green
