// Deployment planning for an inference-heavy workload — the paper's
// fraud-detection motivating scenario ("running a fraud detection model
// on millions of bank transactions might require a focus on inference
// energy consumption").
//
// This example compares candidate AutoML systems for a workload that
// trains once and then scores 50 million transactions per day, using the
// guideline (Fig. 8) and the per-system energy profile, and shows how a
// CAML inference-time constraint changes the yearly footprint.

#include <cstdio>

#include "green/automl/caml_system.h"
#include "green/automl/flaml_system.h"
#include "green/automl/gluon_system.h"
#include "green/automl/guideline.h"
#include "green/data/synthetic.h"
#include "green/energy/co2.h"
#include "green/ml/metrics.h"
#include "green/table/split.h"

namespace {

struct Candidate {
  std::string name;
  double accuracy = 0.0;
  double execution_kwh = 0.0;
  double inference_kwh_per_instance = 0.0;
};

}  // namespace

int main() {
  using namespace green;  // NOLINT: example brevity.

  // A transactions-like table: wide-ish, imbalanced binary labels.
  SyntheticSpec spec;
  spec.name = "transactions";
  spec.num_rows = 800;
  spec.num_features = 16;
  spec.num_informative = 10;
  spec.num_categorical = 5;
  spec.num_classes = 2;
  spec.separation = 2.0;
  spec.label_noise = 0.08;
  spec.seed = 77;
  auto dataset = GenerateSynthetic(spec);
  if (!dataset.ok()) return 1;
  Rng rng(3);
  TrainTestData data =
      Materialize(*dataset, StratifiedSplit(*dataset, 0.66, &rng));

  const MachineModel machine = MachineModel::XeonGold6132();
  EnergyModel energy_model(machine);

  // The guideline's advice for this shape of problem.
  GuidelineQuery query;
  query.search_budget_seconds = 300.0;
  query.priority = GuidelineQuery::Priority::kFastInference;
  const GuidelineRecommendation recommendation = RecommendSystem(query);
  std::printf("guideline: use %s — %s\n\n",
              recommendation.system.c_str(),
              recommendation.rationale.c_str());

  // Measure three candidates (plus a constrained CAML variant).
  auto measure = [&](AutoMlSystem* system, const AutoMlOptions& options,
                     const char* label) -> Candidate {
    Candidate out;
    out.name = label;
    VirtualClock clock;
    ExecutionContext ctx(&clock, &energy_model, 1);
    auto run = system->Fit(data.train, options, &ctx);
    if (!run.ok()) return out;
    EnergyMeter meter(&energy_model);
    meter.Start(clock.Now());
    ctx.SetMeter(&meter);
    auto preds = run->artifact.Predict(data.test, &ctx);
    const EnergyReading inference = meter.Stop(clock.Now());
    if (!preds.ok()) return out;
    out.accuracy = BalancedAccuracy(data.test.labels(), preds.value(), 2);
    out.execution_kwh = run->execution.kwh();
    out.inference_kwh_per_instance =
        inference.kwh() / static_cast<double>(data.test.num_rows());
    return out;
  };

  AutoMlOptions options;
  options.search_budget_seconds = 12.0;
  options.seed = 5;

  std::vector<Candidate> candidates;
  {
    FlamlSystem flaml;
    candidates.push_back(measure(&flaml, options, "flaml"));
  }
  {
    CamlSystem caml;
    candidates.push_back(measure(&caml, options, "caml"));
  }
  {
    CamlSystem caml;
    AutoMlOptions constrained = options;
    constrained.max_inference_seconds_per_row = 5e-4;
    candidates.push_back(
        measure(&caml, constrained, "caml (inference<=0.5ms)"));
  }
  {
    GluonSystem gluon;
    candidates.push_back(measure(&gluon, options, "autogluon"));
  }

  // Yearly footprint at 50M predictions/day.
  const double predictions_per_year = 50e6 * 365.0;
  const EmissionFactors factors = EmissionFactors::Germany2023();
  std::printf(
      "%-24s %8s %14s %18s %14s %12s\n", "system", "bal.acc",
      "exec kWh", "infer kWh/inst", "kWh/year", "tCO2/year");
  for (const Candidate& c : candidates) {
    const double yearly_kwh =
        c.execution_kwh +
        predictions_per_year * c.inference_kwh_per_instance;
    const ImpactEstimate impact = EstimateImpact(yearly_kwh, factors);
    std::printf("%-24s %8.3f %14.4e %18.4e %14.1f %12.2f\n",
                c.name.c_str(), c.accuracy, c.execution_kwh,
                c.inference_kwh_per_instance, impact.kwh,
                impact.kg_co2 / 1000.0);
  }
  std::printf(
      "\nAt this prediction volume the inference term dominates "
      "completely — exactly the regime where the paper recommends "
      "FLAML or constraint-bounded CAML over ensembles.\n");
  return 0;
}
