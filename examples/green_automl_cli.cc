// Command-line front end: run any of the library's AutoML systems on a
// CSV file (or a built-in demo task) and print a holistic energy report,
// optionally exporting the raw measurement as JSON.
//
//   green_automl_cli [--system NAME] [--budget SECONDS] [--csv FILE]
//                    [--task binary|multiclass|regression]
//                    [--cores N] [--jobs N] [--constraint SECONDS_PER_ROW]
//                    [--json OUT.jsonl] [--breakdown] [--transform-cache 0|1]
//                    [--sweep SYS1,SYS2,...] [--budgets B1,B2,...]
//                    [--journal PATH] [--resume] [--retries N]
//                    [--cell-timeout SECONDS] [--faults SPEC]
//                    [--shard i/n] [--compact-journal PATH]
//                    [--merge-journals S0.jsonl ... -o OUT.jsonl]
//
//   --system      tabpfn | caml | caml_tuned | flaml | autogluon |
//                 autogluon_refit | autosklearn1 | autosklearn2 | tpot |
//                 random_search | autopt     (default: caml)
//   --budget      search budget in PAPER seconds (default: 30)
//   --csv         dataset in the library's CSV format (last column
//                 "label" for classification, "target" for regression —
//                 the task type follows the header); omitted = a
//                 built-in synthetic demo task
//   --task        binary | multiclass | regression: which built-in demo
//                 task to generate when --csv is omitted (default:
//                 multiclass)
//   --cores       simulated CPU cores (default: 1)
//   --jobs        host worker threads for harness sweeps; 0 = all
//                 hardware threads (default: $GREEN_JOBS, else 1)
//   --constraint  max inference seconds per instance (CAML only)
//   --json        append the run record to a JSON-lines file
//   --breakdown   collect per-scope energy attribution and print the
//                 hierarchical breakdown table (also: GREEN_SCOPES=1);
//                 exported records then carry a "scopes" field
//   --transform-cache 0|1
//                 memoize fitted transformer chains across search trials
//                 (default: $GREEN_TRANSFORM_CACHE, else on). Purely a
//                 host-time optimization — results are bit-identical
//                 either way; budget via $GREEN_TRANSFORM_CACHE_MB
//
// Sweep mode (fault-tolerant, journaled):
//   --sweep         comma-separated system list; runs a full suite sweep
//                   over the AMLB subset instead of one dataset, with
//                   per-cell retry, failure taxonomy, and journaling
//   --budgets       comma-separated paper budgets (default: 10,30,60,300)
//   --journal       JSONL journal appended per completed cell
//                   (default: $GREEN_JOURNAL)
//   --resume        re-run only cells missing from the journal
//                   (default: $GREEN_RESUME)
//   --retries       max attempts per cell, >= 1 (default: $GREEN_RETRIES,
//                   else 2)
//   --cell-timeout  host seconds before the watchdog cancels a cell, 0 =
//                   off (default: $GREEN_CELL_TIMEOUT)
//   --faults        fault-injection spec, e.g. "run.fit@0.05"
//                   (default: $GREEN_FAULTS; see common/fault.h)
//   --shard i/n     multi-process sharding: run only the sweep cells
//                   shard i of n owns (round-robin over the canonical
//                   enumeration; default: $GREEN_SHARD, else unsharded).
//                   Point each shard at its own --journal and recombine
//                   with --merge-journals; per-shard --resume works
//                   unchanged
//
// Serve mode (overload-resilient inference serving):
//   --serve         fit the chosen system once, load the artifact into a
//                   tiered degrade ladder (full -> best single ->
//                   constant prior), and replay an open-loop request
//                   trace through admission control, micro-batching, and
//                   per-request deadlines on the virtual clock
//   --trace KIND    synthetic trace shape: constant | diurnal | burst
//                   (default: burst)
//   --trace-file F  replay arrivals from a CSV ("arrival_seconds[,row]")
//                   instead of generating one
//   --rps R         mean arrival rate of the synthetic trace (default 20)
//   --trace-seconds S  synthetic trace duration (default 30)
//   --serve-queue N           admission queue bound
//   --serve-batch N           micro-batch size cap
//   --serve-batch-delay-ms M  how long a batch waits for company
//   --serve-deadline-ms M     per-request deadline (0 = none)
//   --serve-energy-slo-j J    per-request energy SLO (0 = none)
//   --serve-policy P          deadline action: fail | degrade
//   --serve-shed P            queue-full policy: newest | oldest
//   Defaults come from GREEN_SERVE_QUEUE, GREEN_SERVE_BATCH,
//   GREEN_SERVE_BATCH_DELAY_MS, GREEN_SERVE_DEADLINE_MS,
//   GREEN_SERVE_ENERGY_SLO_J, GREEN_SERVE_POLICY, GREEN_SERVE_SHED;
//   flags override. --breakdown prints the serving scope subtree;
//   --faults/GREEN_FAULTS inject at serve.admit / serve.batch /
//   serve.predict.
//
// Maintenance:
//   --compact-journal PATH  rewrite a sweep journal keeping only the
//                           last record per cell, then exit
//   --merge-journals S0.jsonl S1.jsonl ... -o OUT.jsonl
//                           recombine per-shard sweep journals into the
//                           byte-identical single-process record stream,
//                           then exit

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/record_io.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"
#include "green/common/thread_pool.h"
#include "green/data/synthetic.h"
#include "green/energy/co2.h"
#include "green/energy/stage_ledger.h"
#include "green/serve/inference_server.h"
#include "green/table/csv.h"
#include "green/table/split.h"

namespace green {
namespace {

/// Runs a fault-tolerant suite sweep (--sweep mode): every cell gets a
/// record, failures are retried and classified, completed cells land in
/// the journal so an interrupted sweep restarts with --resume.
int SweepMain(const std::string& sweep_systems,
              const std::string& budgets_arg, ExperimentConfig config,
              const std::string& json_path) {
  std::vector<std::string> systems;
  for (const std::string& s : Split(sweep_systems, ',')) {
    const std::string name(Trim(s));
    if (!name.empty()) systems.push_back(name);
  }
  if (systems.empty()) {
    std::fprintf(stderr, "--sweep needs at least one system name\n");
    return 2;
  }
  std::vector<double> budgets;
  for (const std::string& b : Split(budgets_arg, ',')) {
    const double budget = std::atof(std::string(Trim(b)).c_str());
    if (budget > 0.0) budgets.push_back(budget);
  }
  if (budgets.empty()) budgets = {10.0, 30.0, 60.0, 300.0};

  // Sweeps run the AMLB subset, not the single-dataset CLI default.
  config.dataset_limit = ExperimentConfig::FromEnv().dataset_limit;
  ExperimentRunner runner(config);
  auto records = runner.Sweep(systems, budgets);
  if (!records.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }
  if (runner.last_sweep_resumed_cells() > 0) {
    std::printf("resumed %zu cell(s) from the journal\n",
                runner.last_sweep_resumed_cells());
  }
  if (runner.last_sweep_resumed_from_incomplete_journal()) {
    std::printf(
        "note: the journal was marked incomplete by a previous run; "
        "cells it was missing were re-run\n");
  }

  // Lost journal appends never surface as records; hand them to the
  // summary as their own fault-site row so a chaos sweep accounts for
  // every injection, not just the cell-failing ones.
  const std::string failures = RenderFailureSummary(
      *records,
      {{"journal.append", runner.last_sweep_journal_append_failures()}});
  if (!failures.empty()) std::printf("%s", failures.c_str());
  const std::string breakdown = RenderEnergyBreakdown(*records);
  if (!breakdown.empty()) std::printf("%s", breakdown.c_str());
  if (config.transform_cache) {
    const std::string cache_stats = RenderTransformCacheStats(
        runner.transform_cache_stats(), config.transform_cache_mb);
    if (!cache_stats.empty()) std::printf("%s", cache_stats.c_str());
  }
  const std::vector<RunRecord> measured = OkOnly(*records);
  if (config.shard_count > 1) {
    std::printf("sweep complete (shard %d/%d): %zu/%zu owned cells "
                "measured ok\n",
                config.shard_index, config.shard_count, measured.size(),
                records->size());
  } else {
    std::printf("sweep complete: %zu/%zu cells measured ok\n",
                measured.size(), records->size());
  }
  if (runner.last_sweep_journal_append_failures() > 0) {
    std::fprintf(
        stderr,
        "warning: %zu record(s) could not be journaled even after "
        "retry; %s is NOT a complete transcript (marked incomplete)\n",
        runner.last_sweep_journal_append_failures(),
        config.journal_path.c_str());
  }

  if (!json_path.empty()) {
    Status st = WriteRecordsJsonl(*records, json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "json export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("records written   : %s (%zu)\n", json_path.c_str(),
                records->size());
  }
  return measured.empty() ? 1 : 0;
}

/// Runs --serve mode: fit one artifact, build its degrade ladder, replay
/// an open-loop trace through the inference server, and report latency,
/// outcome, and energy-per-request numbers (plus the serving scope
/// subtree under --breakdown).
int ServeMain(const std::string& system_name, double budget,
              const Dataset& dataset, ExperimentRunner& runner,
              const ServePolicy& policy, const TraceSpec& trace_spec,
              const std::string& trace_file, bool breakdown) {
  const ExperimentConfig& config = runner.config();
  Rng split_rng(1);
  TrainTestData data =
      Materialize(dataset, SplitForTask(dataset, 0.66, &split_rng));
  EnergyModel energy_model(config.machine);

  // Fit once, off the serving path — development happens before deploy.
  auto system = runner.MakeSystem(system_name, budget);
  if (!system.ok()) {
    std::fprintf(stderr, "serve: %s\n",
                 system.status().ToString().c_str());
    return 2;
  }
  VirtualClock fit_clock;
  ExecutionContext fit_ctx(&fit_clock, &energy_model, config.cores);
  AutoMlOptions options;
  options.search_budget_seconds = budget * config.budget_scale;
  options.cores = config.cores;
  options.seed = config.seed;
  auto run = (*system)->Fit(data.train, options, &fit_ctx);
  if (!run.ok()) {
    std::fprintf(stderr, "serve: fit failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  auto ladder =
      ArtifactLadder::Build(run->artifact, data.train, &energy_model);
  if (!ladder.ok()) {
    std::fprintf(stderr, "serve: %s\n",
                 ladder.status().ToString().c_str());
    return 1;
  }

  std::vector<ServeRequest> trace;
  if (!trace_file.empty()) {
    auto loaded = LoadTraceCsv(trace_file, data.test.num_rows());
    if (!loaded.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::move(loaded).value();
  } else {
    trace = GenerateTrace(trace_spec, data.test.num_rows());
  }

  const FaultInjector faults =
      FaultInjector::Lenient(config.faults, config.seed);
  InferenceServer server(std::move(ladder).value(), data.test,
                         &energy_model, policy, &faults, config.cores);
  auto report = server.Replay(trace);
  if (!report.ok()) {
    std::fprintf(stderr, "serve: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const Status conserved = report->CheckConservation();
  if (!conserved.ok()) {
    std::fprintf(stderr, "serve: conservation check FAILED: %s\n",
                 conserved.ToString().c_str());
    return 1;
  }

  StageLedger ledger;
  ledger.Add(system_name, Stage::kServing, report->reading);

  std::printf("\nserving           : %s artifact, %zu-tier ladder (",
              system_name.c_str(), server.ladder().size());
  for (size_t t = 0; t < server.ladder().size(); ++t) {
    std::printf("%s%s", t > 0 ? " -> " : "",
                server.ladder().tier(t).name.c_str());
  }
  std::printf(")\n");
  std::printf("trace             : %s (%zu requests over %.1f s)\n",
              trace_file.empty() ? TraceKindName(trace_spec.kind)
                                 : trace_file.c_str(),
              trace.size(), report->duration_seconds);
  std::printf(
      "policy            : queue=%zu batch=%zu delay=%.1fms "
      "deadline=%.1fms slo=%.3gJ on_deadline=%s shed=%s\n",
      policy.queue_capacity, policy.max_batch,
      policy.batch_delay_seconds * 1e3, policy.deadline_seconds * 1e3,
      policy.energy_slo_joules, DeadlineActionName(policy.on_deadline),
      ShedPolicyName(policy.shed));
  std::printf("outcomes          : %zu completed, %zu degraded, %zu "
              "rejected, %zu deadline (of %zu; %zu batches)\n",
              report->completed, report->degraded, report->rejected,
              report->deadline_exceeded, report->arrived,
              report->batches);
  std::printf("latency           : p50 %.2f ms, p95 %.2f ms, p99 %.2f "
              "ms (virtual)\n",
              report->LatencyPercentile(0.50) * 1e3,
              report->LatencyPercentile(0.95) * 1e3,
              report->LatencyPercentile(0.99) * 1e3);
  std::printf("energy            : %.4g J dynamic total, %.4g J per "
              "request, %.3e kWh serving stage\n",
              report->total_joules, report->JoulesPerRequest(),
              ledger.Get(system_name, Stage::kServing).kwh());

  if (breakdown) {
    TablePrinter table({"scope", "joules", "share", "charges"});
    const ScopeCharge total =
        ledger.Rollup(system_name, StageName(Stage::kServing));
    for (const ScopeRow& row : ledger.ScopeRows(system_name)) {
      table.AddRow(
          {row.path, StrFormat("%.6g", row.charge.joules),
           StrFormat("%.1f%%", total.joules > 0.0
                                   ? 100.0 * row.charge.joules /
                                         total.joules
                                   : 0.0),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 row.charge.charges))});
    }
    std::printf("\n%s", table.Render().c_str());
  }
  std::printf("conservation      : ok (every request reached exactly one "
              "terminal outcome)\n");
  return 0;
}

int Main(int argc, char** argv) {
  std::string system_name = "caml";
  double budget = 30.0;
  std::string csv_path;
  std::string json_path;
  std::string sweep_systems;
  std::string budgets_arg;
  int cores = 1;
  int jobs = JobsFromEnv();
  double constraint = 0.0;
  std::string journal_path = JournalFromEnv();
  bool resume = ResumeFromEnv();
  int retries = RetriesFromEnv();
  double cell_timeout = CellTimeoutFromEnv();
  bool transform_cache = TransformCacheFromEnv();
  std::string faults = FaultsFromEnv();
  bool breakdown = ScopesFromEnv();
  std::string compact_path;
  ShardSpec shard = ShardFromEnv();
  std::vector<std::string> merge_paths;
  std::string merge_out;
  bool merge_mode = false;
  bool serve_mode = false;
  ServePolicy serve_policy = ServePolicyFromEnv();
  TraceSpec trace_spec;
  trace_spec.kind = TraceSpec::Kind::kBurst;
  trace_spec.rate_rps = 20.0;
  trace_spec.duration_seconds = 30.0;
  std::string trace_file;
  std::string demo_task = "multiclass";

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--system") == 0) {
      system_name = next();
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      budget = std::atof(next());
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_path = next();
    } else if (std::strcmp(argv[i], "--task") == 0) {
      demo_task = next();
      if (!ParseTaskType(demo_task).ok()) {
        std::fprintf(stderr,
                     "--task: want binary|multiclass|regression, got "
                     "\"%s\"\n",
                     demo_task.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next();
    } else if (std::strcmp(argv[i], "--cores") == 0) {
      cores = std::atoi(next());
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = std::atoi(next());
      if (jobs <= 0) jobs = ThreadPool::DefaultThreads();
    } else if (std::strcmp(argv[i], "--constraint") == 0) {
      constraint = std::atof(next());
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep_systems = next();
    } else if (std::strcmp(argv[i], "--budgets") == 0) {
      budgets_arg = next();
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      journal_path = next();
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      retries = std::max(1, std::atoi(next()));
    } else if (std::strcmp(argv[i], "--cell-timeout") == 0) {
      cell_timeout = std::max(0.0, std::atof(next()));
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = next();
    } else if (std::strcmp(argv[i], "--breakdown") == 0) {
      breakdown = true;
    } else if (std::strcmp(argv[i], "--transform-cache") == 0) {
      transform_cache = std::atoi(next()) != 0;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve_mode = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      auto kind = TraceKindFromName(next());
      if (!kind.ok()) {
        std::fprintf(stderr, "--trace: %s\n",
                     kind.status().ToString().c_str());
        return 2;
      }
      trace_spec.kind = *kind;
    } else if (std::strcmp(argv[i], "--trace-file") == 0) {
      trace_file = next();
    } else if (std::strcmp(argv[i], "--rps") == 0) {
      trace_spec.rate_rps = std::atof(next());
    } else if (std::strcmp(argv[i], "--trace-seconds") == 0) {
      trace_spec.duration_seconds = std::atof(next());
    } else if (std::strcmp(argv[i], "--serve-queue") == 0) {
      serve_policy.queue_capacity = static_cast<size_t>(
          std::clamp(std::atol(next()), 1L, 1L << 20));
    } else if (std::strcmp(argv[i], "--serve-batch") == 0) {
      serve_policy.max_batch =
          static_cast<size_t>(std::clamp(std::atol(next()), 1L, 4096L));
    } else if (std::strcmp(argv[i], "--serve-batch-delay-ms") == 0) {
      serve_policy.batch_delay_seconds =
          std::clamp(std::atof(next()), 0.0, 60000.0) / 1e3;
    } else if (std::strcmp(argv[i], "--serve-deadline-ms") == 0) {
      serve_policy.deadline_seconds =
          std::clamp(std::atof(next()), 0.0, 3600000.0) / 1e3;
    } else if (std::strcmp(argv[i], "--serve-energy-slo-j") == 0) {
      serve_policy.energy_slo_joules =
          std::clamp(std::atof(next()), 0.0, 1e12);
    } else if (std::strcmp(argv[i], "--serve-policy") == 0) {
      auto action = DeadlineActionFromName(next());
      if (!action.ok()) {
        std::fprintf(stderr, "--serve-policy: %s\n",
                     action.status().ToString().c_str());
        return 2;
      }
      serve_policy.on_deadline = *action;
    } else if (std::strcmp(argv[i], "--serve-shed") == 0) {
      auto shed_policy = ShedPolicyFromName(next());
      if (!shed_policy.ok()) {
        std::fprintf(stderr, "--serve-shed: %s\n",
                     shed_policy.status().ToString().c_str());
        return 2;
      }
      serve_policy.shed = *shed_policy;
    } else if (std::strcmp(argv[i], "--compact-journal") == 0) {
      compact_path = next();
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      auto parsed = ParseShardSpec(next());
      if (!parsed.ok()) {
        std::fprintf(stderr, "--shard: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      shard = *parsed;
    } else if (std::strcmp(argv[i], "--merge-journals") == 0) {
      merge_mode = true;
      while (i + 1 < argc && std::strcmp(argv[i + 1], "-o") != 0) {
        merge_paths.push_back(argv[++i]);
      }
      if (i + 1 < argc) ++i;  // Consume "-o".
      merge_out = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  if (merge_mode) {
    if (merge_paths.empty() || merge_out.empty()) {
      std::fprintf(stderr,
                   "--merge-journals needs shard journal paths and "
                   "-o OUT.jsonl\n");
      return 2;
    }
    auto merged = MergeShardJournals(merge_paths, merge_out);
    if (!merged.ok()) {
      std::fprintf(stderr, "merge failed: %s\n",
                   merged.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu shard journal(s) merged into %s (%zu records)\n",
                merge_paths.size(), merge_out.c_str(), *merged);
    return 0;
  }

  if (!compact_path.empty()) {
    auto removed = CompactJournalJsonl(compact_path);
    if (!removed.ok()) {
      std::fprintf(stderr, "compaction failed: %s\n",
                   removed.status().ToString().c_str());
      return 1;
    }
    std::printf("journal %s compacted: %zu superseded record(s) removed\n",
                compact_path.c_str(), *removed);
    return 0;
  }

  ExperimentConfig config;
  config.dataset_limit = 1;  // The runner's suite is unused here.
  config.cores = cores;
  config.jobs = jobs;  // Harness sweep threads (RunOne itself is 1 cell).
  config.journal_path = journal_path;
  config.resume = resume;
  config.retry.max_attempts = retries;
  config.cell_timeout_seconds = cell_timeout;
  config.faults = faults;
  config.collect_scopes = breakdown;
  config.transform_cache = transform_cache;
  config.transform_cache_mb = TransformCacheMbFromEnv();
  config.shard_index = shard.index;
  config.shard_count = shard.count;

  if (!sweep_systems.empty()) {
    return SweepMain(sweep_systems, budgets_arg, config, json_path);
  }
  ExperimentRunner runner(config);

  Dataset dataset;
  if (!csv_path.empty()) {
    auto loaded = ReadCsv(csv_path, csv_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", csv_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
  } else if (demo_task == "regression") {
    SyntheticRegressionSpec spec;
    spec.name = "demo_regression";
    spec.num_rows = 500;
    spec.num_features = 12;
    spec.num_informative = 7;
    spec.num_categorical = 3;
    spec.noise = 0.4;
    spec.seed = 4242;
    dataset = GenerateSyntheticRegression(spec).value();
    std::printf(
        "(no --csv given: using a built-in synthetic regression task)\n");
  } else {
    SyntheticSpec spec;
    spec.name = "demo";
    spec.num_rows = 500;
    spec.num_features = 12;
    spec.num_informative = 7;
    spec.num_categorical = 3;
    spec.num_classes = demo_task == "binary" ? 2 : 3;
    spec.separation = 2.2;
    spec.label_noise = 0.05;
    spec.seed = 4242;
    dataset = GenerateSynthetic(spec).value();
    std::printf("(no --csv given: using a built-in synthetic demo task)\n");
  }

  if (serve_mode) {
    trace_spec.seed = config.seed;
    return ServeMain(system_name, budget, dataset, runner, serve_policy,
                     trace_spec, trace_file, breakdown);
  }

  // One full measured run through the same harness the benches use.
  // The inference constraint needs the lower-level API.
  auto record = runner.RunOne(system_name, dataset, budget, 0, cores);
  if (!record.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 record.status().ToString().c_str());
    return 1;
  }
  (void)constraint;  // Reported below for CAML users.

  std::printf("\nsystem            : %s\n", record->system.c_str());
  if (dataset.task() == TaskType::kRegression) {
    std::printf("dataset           : %s (%zu rows x %zu features, "
                "regression)\n",
                dataset.name().c_str(), dataset.num_rows(),
                dataset.num_features());
  } else {
    std::printf("dataset           : %s (%zu rows x %zu features, %d "
                "classes)\n",
                dataset.name().c_str(), dataset.num_rows(),
                dataset.num_features(), dataset.num_classes());
  }
  std::printf("search budget     : %.0f s (paper scale)\n", budget);
  if (record->task == TaskType::kRegression) {
    std::printf("test rmse         : %.3f\n", record->test_metric);
  } else {
    std::printf("balanced accuracy : %.3f\n",
                record->test_balanced_accuracy);
  }
  std::printf("execution         : %.1f s, %.5f kWh\n",
              record->execution_seconds, record->execution_kwh);
  std::printf("inference         : %.3e kWh per instance\n",
              record->inference_kwh_per_instance);
  std::printf("ensemble size     : %zu pipeline(s), %d evaluated\n",
              record->num_pipelines, record->pipelines_evaluated);

  if (breakdown) {
    const std::string table = RenderEnergyBreakdown({*record});
    if (!table.empty()) std::printf("\n%s", table.c_str());
  }

  const ImpactEstimate yearly = EstimateImpact(
      record->execution_kwh +
          record->inference_kwh_per_instance * 1e6 * 365.0,
      EmissionFactors::Germany2023());
  std::printf("at 1M pred/day    : %.1f kWh/year = %.1f kg CO2/year = "
              "%.2f EUR/year\n",
              yearly.kwh, yearly.kg_co2, yearly.eur);
  if (constraint > 0.0) {
    std::printf(
        "note: --constraint applies through the CAML API "
        "(AutoMlOptions::max_inference_seconds_per_row = %g); see "
        "examples/fraud_detection_deployment.cc.\n",
        constraint);
  }

  if (!json_path.empty()) {
    auto existing = ReadRecordsJsonl(json_path);
    std::vector<RunRecord> all =
        existing.ok() ? std::move(existing).value()
                      : std::vector<RunRecord>{};
    all.push_back(*record);
    Status st = WriteRecordsJsonl(all, json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "json export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("record appended   : %s (%zu total)\n", json_path.c_str(),
                all.size());
  }
  return 0;
}

}  // namespace
}  // namespace green

int main(int argc, char** argv) { return green::Main(argc, argv); }
