// Command-line front end: run any of the library's AutoML systems on a
// CSV file (or a built-in demo task) and print a holistic energy report,
// optionally exporting the raw measurement as JSON.
//
//   green_automl_cli [--system NAME] [--budget SECONDS] [--csv FILE]
//                    [--cores N] [--jobs N] [--constraint SECONDS_PER_ROW]
//                    [--json OUT.jsonl]
//
//   --system      tabpfn | caml | caml_tuned | flaml | autogluon |
//                 autogluon_refit | autosklearn1 | autosklearn2 | tpot |
//                 random_search              (default: caml)
//   --budget      search budget in PAPER seconds (default: 30)
//   --csv         dataset in the library's CSV format (last column
//                 "label"); omitted = a built-in synthetic demo task
//   --cores       simulated CPU cores (default: 1)
//   --jobs        host worker threads for harness sweeps; 0 = all
//                 hardware threads (default: $GREEN_JOBS, else 1)
//   --constraint  max inference seconds per instance (CAML only)
//   --json        append the run record to a JSON-lines file

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "green/bench_util/experiment.h"
#include "green/bench_util/record_io.h"
#include "green/common/thread_pool.h"
#include "green/data/synthetic.h"
#include "green/energy/co2.h"
#include "green/table/csv.h"

namespace green {
namespace {

int Main(int argc, char** argv) {
  std::string system_name = "caml";
  double budget = 30.0;
  std::string csv_path;
  std::string json_path;
  int cores = 1;
  int jobs = JobsFromEnv();
  double constraint = 0.0;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--system") == 0) {
      system_name = next();
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      budget = std::atof(next());
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_path = next();
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next();
    } else if (std::strcmp(argv[i], "--cores") == 0) {
      cores = std::atoi(next());
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = std::atoi(next());
      if (jobs <= 0) jobs = ThreadPool::DefaultThreads();
    } else if (std::strcmp(argv[i], "--constraint") == 0) {
      constraint = std::atof(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  ExperimentConfig config;
  config.dataset_limit = 1;  // The runner's suite is unused here.
  config.cores = cores;
  config.jobs = jobs;  // Harness sweep threads (RunOne itself is 1 cell).
  ExperimentRunner runner(config);

  Dataset dataset;
  if (!csv_path.empty()) {
    auto loaded = ReadCsv(csv_path, csv_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", csv_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
  } else {
    SyntheticSpec spec;
    spec.name = "demo";
    spec.num_rows = 500;
    spec.num_features = 12;
    spec.num_informative = 7;
    spec.num_categorical = 3;
    spec.num_classes = 3;
    spec.separation = 2.2;
    spec.label_noise = 0.05;
    spec.seed = 4242;
    dataset = GenerateSynthetic(spec).value();
    std::printf("(no --csv given: using a built-in synthetic demo task)\n");
  }

  // One full measured run through the same harness the benches use.
  // The inference constraint needs the lower-level API.
  auto record = runner.RunOne(system_name, dataset, budget, 0, cores);
  if (!record.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 record.status().ToString().c_str());
    return 1;
  }
  (void)constraint;  // Reported below for CAML users.

  std::printf("\nsystem            : %s\n", record->system.c_str());
  std::printf("dataset           : %s (%zu rows x %zu features, %d "
              "classes)\n",
              dataset.name().c_str(), dataset.num_rows(),
              dataset.num_features(), dataset.num_classes());
  std::printf("search budget     : %.0f s (paper scale)\n", budget);
  std::printf("balanced accuracy : %.3f\n",
              record->test_balanced_accuracy);
  std::printf("execution         : %.1f s, %.5f kWh\n",
              record->execution_seconds, record->execution_kwh);
  std::printf("inference         : %.3e kWh per instance\n",
              record->inference_kwh_per_instance);
  std::printf("ensemble size     : %zu pipeline(s), %d evaluated\n",
              record->num_pipelines, record->pipelines_evaluated);

  const ImpactEstimate yearly = EstimateImpact(
      record->execution_kwh +
          record->inference_kwh_per_instance * 1e6 * 365.0,
      EmissionFactors::Germany2023());
  std::printf("at 1M pred/day    : %.1f kWh/year = %.1f kg CO2/year = "
              "%.2f EUR/year\n",
              yearly.kwh, yearly.kg_co2, yearly.eur);
  if (constraint > 0.0) {
    std::printf(
        "note: --constraint applies through the CAML API "
        "(AutoMlOptions::max_inference_seconds_per_row = %g); see "
        "examples/fraud_detection_deployment.cc.\n",
        constraint);
  }

  if (!json_path.empty()) {
    auto existing = ReadRecordsJsonl(json_path);
    std::vector<RunRecord> all =
        existing.ok() ? std::move(existing).value()
                      : std::vector<RunRecord>{};
    all.push_back(*record);
    Status st = WriteRecordsJsonl(all, json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "json export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("record appended   : %s (%zu total)\n", json_path.c_str(),
                all.size());
  }
  return 0;
}

}  // namespace
}  // namespace green

int main(int argc, char** argv) { return green::Main(argc, argv); }
