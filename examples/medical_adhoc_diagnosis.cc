// Execution-focused scenario — the paper's second motivating case:
// "predicting whether a patient has a specific kind of cancer might
// happen far less often, and thus the focus could be on execution
// efficiency".
//
// Few predictions will ever be made, so the model is effectively
// train-once/score-rarely: this is TabPFN's sweet spot (zero search), and
// this example shows the execution/inference trade-off flip against the
// fraud scenario, including the prediction-count crossover (Fig. 4).

#include <cstdio>

#include "green/automl/caml_system.h"
#include "green/automl/flaml_system.h"
#include "green/automl/tabpfn_system.h"
#include "green/data/synthetic.h"
#include "green/ml/metrics.h"
#include "green/table/split.h"

namespace {

struct Profile {
  std::string name;
  double accuracy = 0.0;
  double execution_kwh = 0.0;
  double inference_kwh_per_instance = 0.0;
};

}  // namespace

int main() {
  using namespace green;  // NOLINT: example brevity.

  // A small clinical-study-sized table: 300 patients, 18 biomarkers.
  SyntheticSpec spec;
  spec.name = "oncology-study";
  spec.num_rows = 300;
  spec.num_features = 18;
  spec.num_informative = 10;
  spec.num_classes = 2;
  spec.separation = 2.4;
  spec.label_noise = 0.05;
  spec.missing_fraction = 0.03;  // Clinical data is never complete.
  spec.seed = 13;
  auto dataset = GenerateSynthetic(spec);
  if (!dataset.ok()) return 1;
  Rng rng(9);
  TrainTestData data =
      Materialize(*dataset, StratifiedSplit(*dataset, 0.66, &rng));

  EnergyModel energy_model(MachineModel::XeonGold6132());

  auto measure = [&](AutoMlSystem* system, const char* label) -> Profile {
    Profile out;
    out.name = label;
    VirtualClock clock;
    ExecutionContext ctx(&clock, &energy_model, 1);
    AutoMlOptions options;
    options.search_budget_seconds = 8.0;
    options.seed = 21;
    auto run = system->Fit(data.train, options, &ctx);
    if (!run.ok()) return out;
    EnergyMeter meter(&energy_model);
    meter.Start(clock.Now());
    ctx.SetMeter(&meter);
    auto preds = run->artifact.Predict(data.test, &ctx);
    const EnergyReading inference = meter.Stop(clock.Now());
    if (!preds.ok()) return out;
    out.accuracy = BalancedAccuracy(data.test.labels(), preds.value(), 2);
    out.execution_kwh = run->execution.kwh();
    out.inference_kwh_per_instance =
        inference.kwh() / static_cast<double>(data.test.num_rows());
    return out;
  };

  std::vector<Profile> profiles;
  {
    TabPfnSystem tabpfn;
    profiles.push_back(measure(&tabpfn, "tabpfn"));
  }
  {
    CamlSystem caml;
    profiles.push_back(measure(&caml, "caml"));
  }
  {
    FlamlSystem flaml;
    profiles.push_back(measure(&flaml, "flaml"));
  }

  std::printf("%-8s %8s %14s %18s\n", "system", "bal.acc", "exec kWh",
              "infer kWh/inst");
  for (const Profile& p : profiles) {
    std::printf("%-8s %8.3f %14.4e %18.4e\n", p.name.c_str(), p.accuracy,
                p.execution_kwh, p.inference_kwh_per_instance);
  }

  // Total energy as the number of diagnoses grows (the Fig. 4 curve).
  std::printf("\ntotal kWh by number of diagnoses made:\n");
  std::printf("%12s", "diagnoses");
  for (const Profile& p : profiles) std::printf(" %14s", p.name.c_str());
  std::printf("   cheapest\n");
  for (double n : {10.0, 100.0, 1e3, 1e4, 1e5, 1e6}) {
    std::printf("%12.0f", n);
    double best = 1e300;
    const Profile* winner = nullptr;
    for (const Profile& p : profiles) {
      const double total =
          p.execution_kwh + n * p.inference_kwh_per_instance;
      std::printf(" %14.4e", total);
      if (total < best) {
        best = total;
        winner = &p;
      }
    }
    std::printf("   %s\n", winner != nullptr ? winner->name.c_str() : "-");
  }
  std::printf(
      "\nFor rare predictions the zero-search system wins outright; the "
      "searchers only amortize once the clinic scores thousands of "
      "patients (the paper's ~26k crossover, at simulation scale).\n");
  return 0;
}
