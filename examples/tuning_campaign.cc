// Development-stage investment — the paper's §2.5/§3.7 workflow as an
// API walkthrough: build a corpus, pick representative datasets with
// K-Means over meta-features, tune CAML's AutoML-system parameters with
// BO + median pruning, then verify the tuned system beats the default on
// held-out tasks and compute when the tuning energy amortizes.

#include <cmath>
#include <cstdio>

#include "green/automl/caml_system.h"
#include "green/data/meta_corpus.h"
#include "green/energy/stage_ledger.h"
#include "green/metaopt/automl_tuner.h"
#include "green/ml/metrics.h"
#include "green/table/split.h"

int main() {
  using namespace green;  // NOLINT: example brevity.

  // 1. A binary-classification corpus (the paper uses 124 OpenML sets).
  MetaCorpusOptions corpus_options;
  corpus_options.num_datasets = 20;
  SimulationProfile profile = SimulationProfile::Fast();
  profile.max_rows = 360;
  auto corpus = GenerateMetaCorpus(corpus_options, profile);
  if (!corpus.ok()) return 1;

  // 2-3. Representative selection + BO tuning, fully metered.
  AutoMlTunerOptions tuner_options;
  tuner_options.search_time_seconds = 1.5;
  tuner_options.bo_iterations = 10;
  tuner_options.top_k_datasets = 4;
  tuner_options.repetitions = 1;
  tuner_options.seed = 3;
  AutoMlTuner tuner(tuner_options);

  EnergyModel energy_model(MachineModel::XeonGold6132());
  VirtualClock clock;
  ExecutionContext ctx(&clock, &energy_model, 1);
  auto tuned = tuner.Tune(*corpus, &ctx);
  if (!tuned.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n",
                 tuned.status().ToString().c_str());
    return 1;
  }
  std::printf("development: %d trials (%d pruned), %.4f kWh, "
              "objective %.3f\n",
              tuned->trials_run, tuned->trials_pruned,
              tuned->development.kwh(), tuned->best_objective);
  std::printf("tuned space: ");
  for (const auto& model : tuned->best_params.models) {
    std::printf("%s ", model.c_str());
  }
  std::printf("\ntuned params: holdout=%.2f eval=%.2f sampling=%.2f "
              "refit=%d rvs=%d incremental=%d\n\n",
              tuned->best_params.holdout_fraction,
              tuned->best_params.evaluation_fraction,
              tuned->best_params.sampling_fraction,
              tuned->best_params.refit,
              tuned->best_params.random_validation_split,
              tuned->best_params.incremental_training);

  // 4. Evaluate default vs tuned CAML on corpus datasets NOT used for
  //    tuning (a fair held-out comparison).
  CamlSystem default_caml;
  CamlSystem tuned_caml(tuned->best_params, "caml_tuned");
  double default_acc = 0.0;
  double tuned_acc = 0.0;
  double default_kwh = 0.0;
  double tuned_kwh = 0.0;
  int evaluated = 0;
  for (size_t i = 0; i < corpus->size() && evaluated < 6; ++i) {
    bool used_for_tuning = false;
    for (size_t idx : tuned->representative_indices) {
      if (idx == i) used_for_tuning = true;
    }
    if (used_for_tuning) continue;
    Rng rng(100 + i);
    TrainTestData data = Materialize(
        (*corpus)[i], StratifiedSplit((*corpus)[i], 0.66, &rng));
    AutoMlOptions options;
    options.search_budget_seconds = tuner_options.search_time_seconds;
    options.seed = 200 + i;

    auto run_default = default_caml.Fit(data.train, options, &ctx);
    auto run_tuned = tuned_caml.Fit(data.train, options, &ctx);
    if (!run_default.ok() || !run_tuned.ok()) continue;
    auto preds_default = run_default->artifact.Predict(data.test, &ctx);
    auto preds_tuned = run_tuned->artifact.Predict(data.test, &ctx);
    if (!preds_default.ok() || !preds_tuned.ok()) continue;
    default_acc += BalancedAccuracy(data.test.labels(),
                                    preds_default.value(), 2);
    tuned_acc +=
        BalancedAccuracy(data.test.labels(), preds_tuned.value(), 2);
    default_kwh += run_default->execution.kwh();
    tuned_kwh += run_tuned->execution.kwh();
    ++evaluated;
  }
  if (evaluated == 0) return 1;
  default_acc /= evaluated;
  tuned_acc /= evaluated;
  std::printf("held-out comparison over %d datasets:\n", evaluated);
  std::printf("  default CAML: acc=%.3f  exec=%.4e kWh/run\n",
              default_acc, default_kwh / evaluated);
  std::printf("  tuned CAML  : acc=%.3f  exec=%.4e kWh/run\n", tuned_acc,
              tuned_kwh / evaluated);

  // 5. Amortization (the paper's 885-run criterion).
  const double saving =
      (default_kwh - tuned_kwh) / static_cast<double>(evaluated);
  const double runs =
      StageLedger::AmortizationRuns(tuned->development.kwh(), saving);
  if (std::isfinite(runs)) {
    std::printf(
        "\nthe tuning investment amortizes after ~%.0f executions.\n",
        runs);
  } else {
    std::printf(
        "\nno per-run execution saving at this scale — tuning pays off "
        "through accuracy instead (see Fig. 7).\n");
  }
  return 0;
}
