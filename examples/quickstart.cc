// Quickstart: run one AutoML system on a tabular task and get a holistic
// energy report — the library's 60-second tour.
//
//   $ ./build/examples/quickstart
//
// Steps shown:
//   1. create (or load) a tabular classification dataset;
//   2. set up the simulated machine, virtual clock, and execution context;
//   3. run an AutoML system under a search budget;
//   4. meter inference separately;
//   5. convert energy into CO2 / EUR and print the per-stage ledger.

#include <cstdio>

#include "green/automl/caml_system.h"
#include "green/data/synthetic.h"
#include "green/energy/co2.h"
#include "green/energy/stage_ledger.h"
#include "green/ml/metrics.h"
#include "green/table/split.h"

int main() {
  using namespace green;  // NOLINT: example brevity.

  // 1. A synthetic stand-in for "your" table: 600 rows, 12 features
  //    (3 categorical), 3 classes, some label noise.
  SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_rows = 600;
  spec.num_features = 12;
  spec.num_informative = 8;
  spec.num_categorical = 3;
  spec.num_classes = 3;
  spec.separation = 2.2;
  spec.label_noise = 0.05;
  spec.seed = 2024;
  auto dataset = GenerateSynthetic(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  Rng rng(1);
  TrainTestData data =
      Materialize(*dataset, StratifiedSplit(*dataset, 0.66, &rng));

  // 2. The simulated measurement environment: the paper's 28-core Xeon.
  const MachineModel machine = MachineModel::XeonGold6132();
  EnergyModel energy_model(machine);
  VirtualClock clock;
  ExecutionContext ctx(&clock, &energy_model, /*cores=*/1);

  // 3. Execute CAML with a 10-virtual-second search budget.
  CamlSystem automl;
  AutoMlOptions options;
  options.search_budget_seconds = 10.0;
  options.seed = 7;
  auto run = automl.Fit(data.train, options, &ctx);
  if (!run.ok()) {
    std::fprintf(stderr, "automl: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  // 4. Meter the inference stage separately.
  EnergyMeter inference_meter(&energy_model);
  inference_meter.Start(clock.Now());
  ctx.SetMeter(&inference_meter);
  auto predictions = run->artifact.Predict(data.test, &ctx);
  const EnergyReading inference = inference_meter.Stop(clock.Now());
  ctx.SetMeter(nullptr);
  if (!predictions.ok()) return 1;

  // 5. Report.
  StageLedger ledger;
  ledger.Add(automl.Name(), Stage::kExecution, run->execution);
  ledger.Add(automl.Name(), Stage::kInference, inference);

  const double accuracy =
      BalancedAccuracy(data.test.labels(), predictions.value(),
                       data.test.num_classes());
  std::printf("chosen pipeline : %s\n",
              run->artifact.Describe().c_str());
  std::printf("pipelines tried : %d\n", run->pipelines_evaluated);
  std::printf("balanced acc.   : %.3f\n", accuracy);
  std::printf("execution       : %.2f s, %.3e kWh\n",
              run->actual_seconds, run->execution.kwh());
  std::printf("inference       : %.3e kWh total (%.3e kWh/instance)\n",
              inference.kwh(),
              inference.kwh() / static_cast<double>(data.test.num_rows()));

  const ImpactEstimate impact = EstimateImpact(
      ledger.TotalKwh(automl.Name()), EmissionFactors::Germany2023());
  std::printf("total footprint : %.3e kWh = %.3e kg CO2 = %.3e EUR\n",
              impact.kwh, impact.kg_co2, impact.eur);
  return 0;
}
