file(REMOVE_RECURSE
  "CMakeFiles/table6_overfitting.dir/table6_overfitting.cc.o"
  "CMakeFiles/table6_overfitting.dir/table6_overfitting.cc.o.d"
  "table6_overfitting"
  "table6_overfitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_overfitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
