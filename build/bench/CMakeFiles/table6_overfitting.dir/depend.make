# Empty dependencies file for table6_overfitting.
# This may be replaced when dependencies are built.
