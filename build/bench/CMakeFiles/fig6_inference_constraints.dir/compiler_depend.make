# Empty compiler generated dependencies file for fig6_inference_constraints.
# This may be replaced when dependencies are built.
