file(REMOVE_RECURSE
  "CMakeFiles/fig6_inference_constraints.dir/fig6_inference_constraints.cc.o"
  "CMakeFiles/fig6_inference_constraints.dir/fig6_inference_constraints.cc.o.d"
  "fig6_inference_constraints"
  "fig6_inference_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_inference_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
