file(REMOVE_RECURSE
  "CMakeFiles/table7_budget_adherence.dir/table7_budget_adherence.cc.o"
  "CMakeFiles/table7_budget_adherence.dir/table7_budget_adherence.cc.o.d"
  "table7_budget_adherence"
  "table7_budget_adherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_budget_adherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
