# Empty compiler generated dependencies file for table7_budget_adherence.
# This may be replaced when dependencies are built.
