# Empty dependencies file for table4_trillion.
# This may be replaced when dependencies are built.
