file(REMOVE_RECURSE
  "CMakeFiles/table4_trillion.dir/table4_trillion.cc.o"
  "CMakeFiles/table4_trillion.dir/table4_trillion.cc.o.d"
  "table4_trillion"
  "table4_trillion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_trillion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
