file(REMOVE_RECURSE
  "CMakeFiles/fig8_guideline.dir/fig8_guideline.cc.o"
  "CMakeFiles/fig8_guideline.dir/fig8_guideline.cc.o.d"
  "fig8_guideline"
  "fig8_guideline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_guideline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
