# Empty dependencies file for fig8_guideline.
# This may be replaced when dependencies are built.
