file(REMOVE_RECURSE
  "CMakeFiles/fig5_parallelism.dir/fig5_parallelism.cc.o"
  "CMakeFiles/fig5_parallelism.dir/fig5_parallelism.cc.o.d"
  "fig5_parallelism"
  "fig5_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
