# Empty compiler generated dependencies file for fig5_parallelism.
# This may be replaced when dependencies are built.
