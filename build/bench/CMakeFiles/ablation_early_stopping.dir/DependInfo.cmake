
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_early_stopping.cc" "bench/CMakeFiles/ablation_early_stopping.dir/ablation_early_stopping.cc.o" "gcc" "bench/CMakeFiles/ablation_early_stopping.dir/ablation_early_stopping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/green_benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_metaopt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_automl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
