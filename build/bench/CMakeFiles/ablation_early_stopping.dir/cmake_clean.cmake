file(REMOVE_RECURSE
  "CMakeFiles/ablation_early_stopping.dir/ablation_early_stopping.cc.o"
  "CMakeFiles/ablation_early_stopping.dir/ablation_early_stopping.cc.o.d"
  "ablation_early_stopping"
  "ablation_early_stopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_early_stopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
