# Empty dependencies file for table8_topk_datasets.
# This may be replaced when dependencies are built.
