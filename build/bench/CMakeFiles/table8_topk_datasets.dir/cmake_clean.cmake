file(REMOVE_RECURSE
  "CMakeFiles/table8_topk_datasets.dir/table8_topk_datasets.cc.o"
  "CMakeFiles/table8_topk_datasets.dir/table8_topk_datasets.cc.o.d"
  "table8_topk_datasets"
  "table8_topk_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_topk_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
