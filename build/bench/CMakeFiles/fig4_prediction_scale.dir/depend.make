# Empty dependencies file for fig4_prediction_scale.
# This may be replaced when dependencies are built.
