file(REMOVE_RECURSE
  "CMakeFiles/fig4_prediction_scale.dir/fig4_prediction_scale.cc.o"
  "CMakeFiles/fig4_prediction_scale.dir/fig4_prediction_scale.cc.o.d"
  "fig4_prediction_scale"
  "fig4_prediction_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_prediction_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
