file(REMOVE_RECURSE
  "CMakeFiles/fig7_development_stage.dir/fig7_development_stage.cc.o"
  "CMakeFiles/fig7_development_stage.dir/fig7_development_stage.cc.o.d"
  "fig7_development_stage"
  "fig7_development_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_development_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
