# Empty compiler generated dependencies file for fig7_development_stage.
# This may be replaced when dependencies are built.
