file(REMOVE_RECURSE
  "CMakeFiles/table9_bo_iterations.dir/table9_bo_iterations.cc.o"
  "CMakeFiles/table9_bo_iterations.dir/table9_bo_iterations.cc.o.d"
  "table9_bo_iterations"
  "table9_bo_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_bo_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
