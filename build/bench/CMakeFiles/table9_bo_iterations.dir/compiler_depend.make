# Empty compiler generated dependencies file for table9_bo_iterations.
# This may be replaced when dependencies are built.
