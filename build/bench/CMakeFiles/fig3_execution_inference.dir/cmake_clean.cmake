file(REMOVE_RECURSE
  "CMakeFiles/fig3_execution_inference.dir/fig3_execution_inference.cc.o"
  "CMakeFiles/fig3_execution_inference.dir/fig3_execution_inference.cc.o.d"
  "fig3_execution_inference"
  "fig3_execution_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_execution_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
