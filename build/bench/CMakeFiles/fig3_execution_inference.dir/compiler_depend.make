# Empty compiler generated dependencies file for fig3_execution_inference.
# This may be replaced when dependencies are built.
