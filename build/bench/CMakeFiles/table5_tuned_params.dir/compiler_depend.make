# Empty compiler generated dependencies file for table5_tuned_params.
# This may be replaced when dependencies are built.
