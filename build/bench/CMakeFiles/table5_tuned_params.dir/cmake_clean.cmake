file(REMOVE_RECURSE
  "CMakeFiles/table5_tuned_params.dir/table5_tuned_params.cc.o"
  "CMakeFiles/table5_tuned_params.dir/table5_tuned_params.cc.o.d"
  "table5_tuned_params"
  "table5_tuned_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_tuned_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
