file(REMOVE_RECURSE
  "CMakeFiles/table3_gpu.dir/table3_gpu.cc.o"
  "CMakeFiles/table3_gpu.dir/table3_gpu.cc.o.d"
  "table3_gpu"
  "table3_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
