
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/green/table/column.cc" "src/CMakeFiles/green_table.dir/green/table/column.cc.o" "gcc" "src/CMakeFiles/green_table.dir/green/table/column.cc.o.d"
  "/root/repo/src/green/table/csv.cc" "src/CMakeFiles/green_table.dir/green/table/csv.cc.o" "gcc" "src/CMakeFiles/green_table.dir/green/table/csv.cc.o.d"
  "/root/repo/src/green/table/dataset.cc" "src/CMakeFiles/green_table.dir/green/table/dataset.cc.o" "gcc" "src/CMakeFiles/green_table.dir/green/table/dataset.cc.o.d"
  "/root/repo/src/green/table/metafeatures.cc" "src/CMakeFiles/green_table.dir/green/table/metafeatures.cc.o" "gcc" "src/CMakeFiles/green_table.dir/green/table/metafeatures.cc.o.d"
  "/root/repo/src/green/table/split.cc" "src/CMakeFiles/green_table.dir/green/table/split.cc.o" "gcc" "src/CMakeFiles/green_table.dir/green/table/split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/green_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
