file(REMOVE_RECURSE
  "CMakeFiles/green_table.dir/green/table/column.cc.o"
  "CMakeFiles/green_table.dir/green/table/column.cc.o.d"
  "CMakeFiles/green_table.dir/green/table/csv.cc.o"
  "CMakeFiles/green_table.dir/green/table/csv.cc.o.d"
  "CMakeFiles/green_table.dir/green/table/dataset.cc.o"
  "CMakeFiles/green_table.dir/green/table/dataset.cc.o.d"
  "CMakeFiles/green_table.dir/green/table/metafeatures.cc.o"
  "CMakeFiles/green_table.dir/green/table/metafeatures.cc.o.d"
  "CMakeFiles/green_table.dir/green/table/split.cc.o"
  "CMakeFiles/green_table.dir/green/table/split.cc.o.d"
  "libgreen_table.a"
  "libgreen_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
