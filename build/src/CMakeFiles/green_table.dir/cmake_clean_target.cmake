file(REMOVE_RECURSE
  "libgreen_table.a"
)
