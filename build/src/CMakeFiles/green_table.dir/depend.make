# Empty dependencies file for green_table.
# This may be replaced when dependencies are built.
