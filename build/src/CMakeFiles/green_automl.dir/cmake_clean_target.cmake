file(REMOVE_RECURSE
  "libgreen_automl.a"
)
