
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/green/automl/askl_system.cc" "src/CMakeFiles/green_automl.dir/green/automl/askl_system.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/askl_system.cc.o.d"
  "/root/repo/src/green/automl/automl_system.cc" "src/CMakeFiles/green_automl.dir/green/automl/automl_system.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/automl_system.cc.o.d"
  "/root/repo/src/green/automl/caml_system.cc" "src/CMakeFiles/green_automl.dir/green/automl/caml_system.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/caml_system.cc.o.d"
  "/root/repo/src/green/automl/fitted_artifact.cc" "src/CMakeFiles/green_automl.dir/green/automl/fitted_artifact.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/fitted_artifact.cc.o.d"
  "/root/repo/src/green/automl/flaml_system.cc" "src/CMakeFiles/green_automl.dir/green/automl/flaml_system.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/flaml_system.cc.o.d"
  "/root/repo/src/green/automl/gluon_system.cc" "src/CMakeFiles/green_automl.dir/green/automl/gluon_system.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/gluon_system.cc.o.d"
  "/root/repo/src/green/automl/guideline.cc" "src/CMakeFiles/green_automl.dir/green/automl/guideline.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/guideline.cc.o.d"
  "/root/repo/src/green/automl/random_search_system.cc" "src/CMakeFiles/green_automl.dir/green/automl/random_search_system.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/random_search_system.cc.o.d"
  "/root/repo/src/green/automl/search_model_space.cc" "src/CMakeFiles/green_automl.dir/green/automl/search_model_space.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/search_model_space.cc.o.d"
  "/root/repo/src/green/automl/tabpfn_system.cc" "src/CMakeFiles/green_automl.dir/green/automl/tabpfn_system.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/tabpfn_system.cc.o.d"
  "/root/repo/src/green/automl/tpot_system.cc" "src/CMakeFiles/green_automl.dir/green/automl/tpot_system.cc.o" "gcc" "src/CMakeFiles/green_automl.dir/green/automl/tpot_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/green_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
