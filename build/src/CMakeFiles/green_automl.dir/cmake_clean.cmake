file(REMOVE_RECURSE
  "CMakeFiles/green_automl.dir/green/automl/askl_system.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/askl_system.cc.o.d"
  "CMakeFiles/green_automl.dir/green/automl/automl_system.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/automl_system.cc.o.d"
  "CMakeFiles/green_automl.dir/green/automl/caml_system.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/caml_system.cc.o.d"
  "CMakeFiles/green_automl.dir/green/automl/fitted_artifact.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/fitted_artifact.cc.o.d"
  "CMakeFiles/green_automl.dir/green/automl/flaml_system.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/flaml_system.cc.o.d"
  "CMakeFiles/green_automl.dir/green/automl/gluon_system.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/gluon_system.cc.o.d"
  "CMakeFiles/green_automl.dir/green/automl/guideline.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/guideline.cc.o.d"
  "CMakeFiles/green_automl.dir/green/automl/random_search_system.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/random_search_system.cc.o.d"
  "CMakeFiles/green_automl.dir/green/automl/search_model_space.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/search_model_space.cc.o.d"
  "CMakeFiles/green_automl.dir/green/automl/tabpfn_system.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/tabpfn_system.cc.o.d"
  "CMakeFiles/green_automl.dir/green/automl/tpot_system.cc.o"
  "CMakeFiles/green_automl.dir/green/automl/tpot_system.cc.o.d"
  "libgreen_automl.a"
  "libgreen_automl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_automl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
