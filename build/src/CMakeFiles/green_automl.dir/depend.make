# Empty dependencies file for green_automl.
# This may be replaced when dependencies are built.
