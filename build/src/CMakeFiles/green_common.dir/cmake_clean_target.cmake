file(REMOVE_RECURSE
  "libgreen_common.a"
)
