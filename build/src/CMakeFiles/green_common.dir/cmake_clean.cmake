file(REMOVE_RECURSE
  "CMakeFiles/green_common.dir/green/common/logging.cc.o"
  "CMakeFiles/green_common.dir/green/common/logging.cc.o.d"
  "CMakeFiles/green_common.dir/green/common/mathutil.cc.o"
  "CMakeFiles/green_common.dir/green/common/mathutil.cc.o.d"
  "CMakeFiles/green_common.dir/green/common/rng.cc.o"
  "CMakeFiles/green_common.dir/green/common/rng.cc.o.d"
  "CMakeFiles/green_common.dir/green/common/status.cc.o"
  "CMakeFiles/green_common.dir/green/common/status.cc.o.d"
  "CMakeFiles/green_common.dir/green/common/stringutil.cc.o"
  "CMakeFiles/green_common.dir/green/common/stringutil.cc.o.d"
  "libgreen_common.a"
  "libgreen_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
