
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/green/common/logging.cc" "src/CMakeFiles/green_common.dir/green/common/logging.cc.o" "gcc" "src/CMakeFiles/green_common.dir/green/common/logging.cc.o.d"
  "/root/repo/src/green/common/mathutil.cc" "src/CMakeFiles/green_common.dir/green/common/mathutil.cc.o" "gcc" "src/CMakeFiles/green_common.dir/green/common/mathutil.cc.o.d"
  "/root/repo/src/green/common/rng.cc" "src/CMakeFiles/green_common.dir/green/common/rng.cc.o" "gcc" "src/CMakeFiles/green_common.dir/green/common/rng.cc.o.d"
  "/root/repo/src/green/common/status.cc" "src/CMakeFiles/green_common.dir/green/common/status.cc.o" "gcc" "src/CMakeFiles/green_common.dir/green/common/status.cc.o.d"
  "/root/repo/src/green/common/stringutil.cc" "src/CMakeFiles/green_common.dir/green/common/stringutil.cc.o" "gcc" "src/CMakeFiles/green_common.dir/green/common/stringutil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
