# Empty compiler generated dependencies file for green_common.
# This may be replaced when dependencies are built.
