# Empty dependencies file for green_benchutil.
# This may be replaced when dependencies are built.
