file(REMOVE_RECURSE
  "libgreen_benchutil.a"
)
