file(REMOVE_RECURSE
  "CMakeFiles/green_benchutil.dir/green/bench_util/aggregate.cc.o"
  "CMakeFiles/green_benchutil.dir/green/bench_util/aggregate.cc.o.d"
  "CMakeFiles/green_benchutil.dir/green/bench_util/experiment.cc.o"
  "CMakeFiles/green_benchutil.dir/green/bench_util/experiment.cc.o.d"
  "CMakeFiles/green_benchutil.dir/green/bench_util/record_io.cc.o"
  "CMakeFiles/green_benchutil.dir/green/bench_util/record_io.cc.o.d"
  "CMakeFiles/green_benchutil.dir/green/bench_util/table_printer.cc.o"
  "CMakeFiles/green_benchutil.dir/green/bench_util/table_printer.cc.o.d"
  "libgreen_benchutil.a"
  "libgreen_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
