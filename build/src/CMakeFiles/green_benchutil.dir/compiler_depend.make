# Empty compiler generated dependencies file for green_benchutil.
# This may be replaced when dependencies are built.
