file(REMOVE_RECURSE
  "CMakeFiles/green_data.dir/green/data/amlb_suite.cc.o"
  "CMakeFiles/green_data.dir/green/data/amlb_suite.cc.o.d"
  "CMakeFiles/green_data.dir/green/data/meta_corpus.cc.o"
  "CMakeFiles/green_data.dir/green/data/meta_corpus.cc.o.d"
  "CMakeFiles/green_data.dir/green/data/synthetic.cc.o"
  "CMakeFiles/green_data.dir/green/data/synthetic.cc.o.d"
  "libgreen_data.a"
  "libgreen_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
