
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/green/data/amlb_suite.cc" "src/CMakeFiles/green_data.dir/green/data/amlb_suite.cc.o" "gcc" "src/CMakeFiles/green_data.dir/green/data/amlb_suite.cc.o.d"
  "/root/repo/src/green/data/meta_corpus.cc" "src/CMakeFiles/green_data.dir/green/data/meta_corpus.cc.o" "gcc" "src/CMakeFiles/green_data.dir/green/data/meta_corpus.cc.o.d"
  "/root/repo/src/green/data/synthetic.cc" "src/CMakeFiles/green_data.dir/green/data/synthetic.cc.o" "gcc" "src/CMakeFiles/green_data.dir/green/data/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/green_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
