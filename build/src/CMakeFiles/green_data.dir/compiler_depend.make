# Empty compiler generated dependencies file for green_data.
# This may be replaced when dependencies are built.
