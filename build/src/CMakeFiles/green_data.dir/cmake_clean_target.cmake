file(REMOVE_RECURSE
  "libgreen_data.a"
)
