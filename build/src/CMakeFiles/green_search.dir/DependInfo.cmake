
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/green/search/bayes_opt.cc" "src/CMakeFiles/green_search.dir/green/search/bayes_opt.cc.o" "gcc" "src/CMakeFiles/green_search.dir/green/search/bayes_opt.cc.o.d"
  "/root/repo/src/green/search/caruana.cc" "src/CMakeFiles/green_search.dir/green/search/caruana.cc.o" "gcc" "src/CMakeFiles/green_search.dir/green/search/caruana.cc.o.d"
  "/root/repo/src/green/search/kmeans.cc" "src/CMakeFiles/green_search.dir/green/search/kmeans.cc.o" "gcc" "src/CMakeFiles/green_search.dir/green/search/kmeans.cc.o.d"
  "/root/repo/src/green/search/median_pruner.cc" "src/CMakeFiles/green_search.dir/green/search/median_pruner.cc.o" "gcc" "src/CMakeFiles/green_search.dir/green/search/median_pruner.cc.o.d"
  "/root/repo/src/green/search/nsga2.cc" "src/CMakeFiles/green_search.dir/green/search/nsga2.cc.o" "gcc" "src/CMakeFiles/green_search.dir/green/search/nsga2.cc.o.d"
  "/root/repo/src/green/search/param_space.cc" "src/CMakeFiles/green_search.dir/green/search/param_space.cc.o" "gcc" "src/CMakeFiles/green_search.dir/green/search/param_space.cc.o.d"
  "/root/repo/src/green/search/random_search.cc" "src/CMakeFiles/green_search.dir/green/search/random_search.cc.o" "gcc" "src/CMakeFiles/green_search.dir/green/search/random_search.cc.o.d"
  "/root/repo/src/green/search/rf_surrogate.cc" "src/CMakeFiles/green_search.dir/green/search/rf_surrogate.cc.o" "gcc" "src/CMakeFiles/green_search.dir/green/search/rf_surrogate.cc.o.d"
  "/root/repo/src/green/search/successive_halving.cc" "src/CMakeFiles/green_search.dir/green/search/successive_halving.cc.o" "gcc" "src/CMakeFiles/green_search.dir/green/search/successive_halving.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/green_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
