file(REMOVE_RECURSE
  "CMakeFiles/green_search.dir/green/search/bayes_opt.cc.o"
  "CMakeFiles/green_search.dir/green/search/bayes_opt.cc.o.d"
  "CMakeFiles/green_search.dir/green/search/caruana.cc.o"
  "CMakeFiles/green_search.dir/green/search/caruana.cc.o.d"
  "CMakeFiles/green_search.dir/green/search/kmeans.cc.o"
  "CMakeFiles/green_search.dir/green/search/kmeans.cc.o.d"
  "CMakeFiles/green_search.dir/green/search/median_pruner.cc.o"
  "CMakeFiles/green_search.dir/green/search/median_pruner.cc.o.d"
  "CMakeFiles/green_search.dir/green/search/nsga2.cc.o"
  "CMakeFiles/green_search.dir/green/search/nsga2.cc.o.d"
  "CMakeFiles/green_search.dir/green/search/param_space.cc.o"
  "CMakeFiles/green_search.dir/green/search/param_space.cc.o.d"
  "CMakeFiles/green_search.dir/green/search/random_search.cc.o"
  "CMakeFiles/green_search.dir/green/search/random_search.cc.o.d"
  "CMakeFiles/green_search.dir/green/search/rf_surrogate.cc.o"
  "CMakeFiles/green_search.dir/green/search/rf_surrogate.cc.o.d"
  "CMakeFiles/green_search.dir/green/search/successive_halving.cc.o"
  "CMakeFiles/green_search.dir/green/search/successive_halving.cc.o.d"
  "libgreen_search.a"
  "libgreen_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
