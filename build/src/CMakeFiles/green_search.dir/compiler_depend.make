# Empty compiler generated dependencies file for green_search.
# This may be replaced when dependencies are built.
