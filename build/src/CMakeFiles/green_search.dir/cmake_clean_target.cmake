file(REMOVE_RECURSE
  "libgreen_search.a"
)
