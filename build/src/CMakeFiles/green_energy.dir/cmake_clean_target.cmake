file(REMOVE_RECURSE
  "libgreen_energy.a"
)
