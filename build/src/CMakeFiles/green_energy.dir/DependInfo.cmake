
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/green/energy/co2.cc" "src/CMakeFiles/green_energy.dir/green/energy/co2.cc.o" "gcc" "src/CMakeFiles/green_energy.dir/green/energy/co2.cc.o.d"
  "/root/repo/src/green/energy/energy_meter.cc" "src/CMakeFiles/green_energy.dir/green/energy/energy_meter.cc.o" "gcc" "src/CMakeFiles/green_energy.dir/green/energy/energy_meter.cc.o.d"
  "/root/repo/src/green/energy/energy_model.cc" "src/CMakeFiles/green_energy.dir/green/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/green_energy.dir/green/energy/energy_model.cc.o.d"
  "/root/repo/src/green/energy/machine_model.cc" "src/CMakeFiles/green_energy.dir/green/energy/machine_model.cc.o" "gcc" "src/CMakeFiles/green_energy.dir/green/energy/machine_model.cc.o.d"
  "/root/repo/src/green/energy/powercap_reader.cc" "src/CMakeFiles/green_energy.dir/green/energy/powercap_reader.cc.o" "gcc" "src/CMakeFiles/green_energy.dir/green/energy/powercap_reader.cc.o.d"
  "/root/repo/src/green/energy/rapl_simulator.cc" "src/CMakeFiles/green_energy.dir/green/energy/rapl_simulator.cc.o" "gcc" "src/CMakeFiles/green_energy.dir/green/energy/rapl_simulator.cc.o.d"
  "/root/repo/src/green/energy/stage_ledger.cc" "src/CMakeFiles/green_energy.dir/green/energy/stage_ledger.cc.o" "gcc" "src/CMakeFiles/green_energy.dir/green/energy/stage_ledger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/green_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
