file(REMOVE_RECURSE
  "CMakeFiles/green_energy.dir/green/energy/co2.cc.o"
  "CMakeFiles/green_energy.dir/green/energy/co2.cc.o.d"
  "CMakeFiles/green_energy.dir/green/energy/energy_meter.cc.o"
  "CMakeFiles/green_energy.dir/green/energy/energy_meter.cc.o.d"
  "CMakeFiles/green_energy.dir/green/energy/energy_model.cc.o"
  "CMakeFiles/green_energy.dir/green/energy/energy_model.cc.o.d"
  "CMakeFiles/green_energy.dir/green/energy/machine_model.cc.o"
  "CMakeFiles/green_energy.dir/green/energy/machine_model.cc.o.d"
  "CMakeFiles/green_energy.dir/green/energy/powercap_reader.cc.o"
  "CMakeFiles/green_energy.dir/green/energy/powercap_reader.cc.o.d"
  "CMakeFiles/green_energy.dir/green/energy/rapl_simulator.cc.o"
  "CMakeFiles/green_energy.dir/green/energy/rapl_simulator.cc.o.d"
  "CMakeFiles/green_energy.dir/green/energy/stage_ledger.cc.o"
  "CMakeFiles/green_energy.dir/green/energy/stage_ledger.cc.o.d"
  "libgreen_energy.a"
  "libgreen_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
