# Empty compiler generated dependencies file for green_ml.
# This may be replaced when dependencies are built.
