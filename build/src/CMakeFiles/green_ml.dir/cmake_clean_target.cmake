file(REMOVE_RECURSE
  "libgreen_ml.a"
)
