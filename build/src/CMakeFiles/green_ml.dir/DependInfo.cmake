
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/green/ml/estimator.cc" "src/CMakeFiles/green_ml.dir/green/ml/estimator.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/estimator.cc.o.d"
  "/root/repo/src/green/ml/metrics.cc" "src/CMakeFiles/green_ml.dir/green/ml/metrics.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/metrics.cc.o.d"
  "/root/repo/src/green/ml/model_registry.cc" "src/CMakeFiles/green_ml.dir/green/ml/model_registry.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/model_registry.cc.o.d"
  "/root/repo/src/green/ml/models/adaboost.cc" "src/CMakeFiles/green_ml.dir/green/ml/models/adaboost.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/models/adaboost.cc.o.d"
  "/root/repo/src/green/ml/models/attention_few_shot.cc" "src/CMakeFiles/green_ml.dir/green/ml/models/attention_few_shot.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/models/attention_few_shot.cc.o.d"
  "/root/repo/src/green/ml/models/decision_tree.cc" "src/CMakeFiles/green_ml.dir/green/ml/models/decision_tree.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/models/decision_tree.cc.o.d"
  "/root/repo/src/green/ml/models/extra_trees.cc" "src/CMakeFiles/green_ml.dir/green/ml/models/extra_trees.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/models/extra_trees.cc.o.d"
  "/root/repo/src/green/ml/models/gradient_boosting.cc" "src/CMakeFiles/green_ml.dir/green/ml/models/gradient_boosting.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/models/gradient_boosting.cc.o.d"
  "/root/repo/src/green/ml/models/knn.cc" "src/CMakeFiles/green_ml.dir/green/ml/models/knn.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/models/knn.cc.o.d"
  "/root/repo/src/green/ml/models/logistic_regression.cc" "src/CMakeFiles/green_ml.dir/green/ml/models/logistic_regression.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/models/logistic_regression.cc.o.d"
  "/root/repo/src/green/ml/models/mlp.cc" "src/CMakeFiles/green_ml.dir/green/ml/models/mlp.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/models/mlp.cc.o.d"
  "/root/repo/src/green/ml/models/naive_bayes.cc" "src/CMakeFiles/green_ml.dir/green/ml/models/naive_bayes.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/models/naive_bayes.cc.o.d"
  "/root/repo/src/green/ml/models/random_forest.cc" "src/CMakeFiles/green_ml.dir/green/ml/models/random_forest.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/models/random_forest.cc.o.d"
  "/root/repo/src/green/ml/pipeline.cc" "src/CMakeFiles/green_ml.dir/green/ml/pipeline.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/pipeline.cc.o.d"
  "/root/repo/src/green/ml/preprocess/binning.cc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/binning.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/binning.cc.o.d"
  "/root/repo/src/green/ml/preprocess/feature_selection.cc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/feature_selection.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/feature_selection.cc.o.d"
  "/root/repo/src/green/ml/preprocess/imputer.cc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/imputer.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/imputer.cc.o.d"
  "/root/repo/src/green/ml/preprocess/one_hot.cc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/one_hot.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/one_hot.cc.o.d"
  "/root/repo/src/green/ml/preprocess/pca.cc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/pca.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/pca.cc.o.d"
  "/root/repo/src/green/ml/preprocess/scaler.cc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/scaler.cc.o" "gcc" "src/CMakeFiles/green_ml.dir/green/ml/preprocess/scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/green_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
