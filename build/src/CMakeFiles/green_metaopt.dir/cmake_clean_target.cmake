file(REMOVE_RECURSE
  "libgreen_metaopt.a"
)
