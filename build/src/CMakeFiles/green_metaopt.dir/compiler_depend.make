# Empty compiler generated dependencies file for green_metaopt.
# This may be replaced when dependencies are built.
