file(REMOVE_RECURSE
  "CMakeFiles/green_metaopt.dir/green/metaopt/automl_tuner.cc.o"
  "CMakeFiles/green_metaopt.dir/green/metaopt/automl_tuner.cc.o.d"
  "CMakeFiles/green_metaopt.dir/green/metaopt/representative.cc.o"
  "CMakeFiles/green_metaopt.dir/green/metaopt/representative.cc.o.d"
  "CMakeFiles/green_metaopt.dir/green/metaopt/tuned_config_store.cc.o"
  "CMakeFiles/green_metaopt.dir/green/metaopt/tuned_config_store.cc.o.d"
  "libgreen_metaopt.a"
  "libgreen_metaopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_metaopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
