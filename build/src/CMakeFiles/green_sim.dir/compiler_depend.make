# Empty compiler generated dependencies file for green_sim.
# This may be replaced when dependencies are built.
