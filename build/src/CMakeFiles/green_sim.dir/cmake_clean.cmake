file(REMOVE_RECURSE
  "CMakeFiles/green_sim.dir/green/sim/budget_policy.cc.o"
  "CMakeFiles/green_sim.dir/green/sim/budget_policy.cc.o.d"
  "CMakeFiles/green_sim.dir/green/sim/execution_context.cc.o"
  "CMakeFiles/green_sim.dir/green/sim/execution_context.cc.o.d"
  "CMakeFiles/green_sim.dir/green/sim/task_scheduler.cc.o"
  "CMakeFiles/green_sim.dir/green/sim/task_scheduler.cc.o.d"
  "CMakeFiles/green_sim.dir/green/sim/virtual_clock.cc.o"
  "CMakeFiles/green_sim.dir/green/sim/virtual_clock.cc.o.d"
  "CMakeFiles/green_sim.dir/green/sim/work_counter.cc.o"
  "CMakeFiles/green_sim.dir/green/sim/work_counter.cc.o.d"
  "libgreen_sim.a"
  "libgreen_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
