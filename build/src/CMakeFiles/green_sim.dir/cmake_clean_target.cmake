file(REMOVE_RECURSE
  "libgreen_sim.a"
)
