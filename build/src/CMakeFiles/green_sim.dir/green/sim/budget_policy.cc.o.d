src/CMakeFiles/green_sim.dir/green/sim/budget_policy.cc.o: \
 /root/repo/src/green/sim/budget_policy.cc /usr/include/stdc-predef.h \
 /root/repo/src/green/sim/budget_policy.h
