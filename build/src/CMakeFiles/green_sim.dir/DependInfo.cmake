
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/green/sim/budget_policy.cc" "src/CMakeFiles/green_sim.dir/green/sim/budget_policy.cc.o" "gcc" "src/CMakeFiles/green_sim.dir/green/sim/budget_policy.cc.o.d"
  "/root/repo/src/green/sim/execution_context.cc" "src/CMakeFiles/green_sim.dir/green/sim/execution_context.cc.o" "gcc" "src/CMakeFiles/green_sim.dir/green/sim/execution_context.cc.o.d"
  "/root/repo/src/green/sim/task_scheduler.cc" "src/CMakeFiles/green_sim.dir/green/sim/task_scheduler.cc.o" "gcc" "src/CMakeFiles/green_sim.dir/green/sim/task_scheduler.cc.o.d"
  "/root/repo/src/green/sim/virtual_clock.cc" "src/CMakeFiles/green_sim.dir/green/sim/virtual_clock.cc.o" "gcc" "src/CMakeFiles/green_sim.dir/green/sim/virtual_clock.cc.o.d"
  "/root/repo/src/green/sim/work_counter.cc" "src/CMakeFiles/green_sim.dir/green/sim/work_counter.cc.o" "gcc" "src/CMakeFiles/green_sim.dir/green/sim/work_counter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/green_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/green_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
