# Empty dependencies file for automl_systems_test.
# This may be replaced when dependencies are built.
