file(REMOVE_RECURSE
  "CMakeFiles/automl_systems_test.dir/automl_systems_test.cc.o"
  "CMakeFiles/automl_systems_test.dir/automl_systems_test.cc.o.d"
  "automl_systems_test"
  "automl_systems_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automl_systems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
