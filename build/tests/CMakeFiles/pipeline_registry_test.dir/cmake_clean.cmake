file(REMOVE_RECURSE
  "CMakeFiles/pipeline_registry_test.dir/pipeline_registry_test.cc.o"
  "CMakeFiles/pipeline_registry_test.dir/pipeline_registry_test.cc.o.d"
  "pipeline_registry_test"
  "pipeline_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
