# Empty compiler generated dependencies file for pipeline_registry_test.
# This may be replaced when dependencies are built.
