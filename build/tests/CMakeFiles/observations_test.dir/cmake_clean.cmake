file(REMOVE_RECURSE
  "CMakeFiles/observations_test.dir/observations_test.cc.o"
  "CMakeFiles/observations_test.dir/observations_test.cc.o.d"
  "observations_test"
  "observations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
