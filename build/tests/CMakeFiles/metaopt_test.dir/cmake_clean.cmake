file(REMOVE_RECURSE
  "CMakeFiles/metaopt_test.dir/metaopt_test.cc.o"
  "CMakeFiles/metaopt_test.dir/metaopt_test.cc.o.d"
  "metaopt_test"
  "metaopt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
