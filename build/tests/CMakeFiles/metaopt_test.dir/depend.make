# Empty dependencies file for metaopt_test.
# This may be replaced when dependencies are built.
