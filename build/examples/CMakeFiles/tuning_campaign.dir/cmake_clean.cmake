file(REMOVE_RECURSE
  "CMakeFiles/tuning_campaign.dir/tuning_campaign.cc.o"
  "CMakeFiles/tuning_campaign.dir/tuning_campaign.cc.o.d"
  "tuning_campaign"
  "tuning_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
