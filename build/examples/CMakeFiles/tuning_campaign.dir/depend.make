# Empty dependencies file for tuning_campaign.
# This may be replaced when dependencies are built.
