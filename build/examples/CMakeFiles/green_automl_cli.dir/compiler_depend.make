# Empty compiler generated dependencies file for green_automl_cli.
# This may be replaced when dependencies are built.
