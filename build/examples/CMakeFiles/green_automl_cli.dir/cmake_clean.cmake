file(REMOVE_RECURSE
  "CMakeFiles/green_automl_cli.dir/green_automl_cli.cc.o"
  "CMakeFiles/green_automl_cli.dir/green_automl_cli.cc.o.d"
  "green_automl_cli"
  "green_automl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_automl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
