# Empty dependencies file for medical_adhoc_diagnosis.
# This may be replaced when dependencies are built.
