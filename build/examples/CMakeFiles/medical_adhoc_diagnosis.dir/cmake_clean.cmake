file(REMOVE_RECURSE
  "CMakeFiles/medical_adhoc_diagnosis.dir/medical_adhoc_diagnosis.cc.o"
  "CMakeFiles/medical_adhoc_diagnosis.dir/medical_adhoc_diagnosis.cc.o.d"
  "medical_adhoc_diagnosis"
  "medical_adhoc_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_adhoc_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
