file(REMOVE_RECURSE
  "CMakeFiles/fraud_detection_deployment.dir/fraud_detection_deployment.cc.o"
  "CMakeFiles/fraud_detection_deployment.dir/fraud_detection_deployment.cc.o.d"
  "fraud_detection_deployment"
  "fraud_detection_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_detection_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
