# Empty compiler generated dependencies file for fraud_detection_deployment.
# This may be replaced when dependencies are built.
